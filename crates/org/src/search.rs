//! The local-search construction algorithm (§3.3).
//!
//! Starting from an initial organization (usually the agglomerative
//! clustering of [`crate::init::clustering_org`]), the algorithm performs
//! downward sweeps from the root. Within each level, states are visited in
//! ascending reachability (Eq 10) — the least discoverable states get
//! attention first — and for each a modification (`ADD_PARENT` or
//! `DELETE_PARENT`) is proposed. A proposal that increases organization
//! effectiveness is accepted; otherwise it is accepted with probability
//! `P(T|O') / P(T|O)` (Eq 9, a Metropolis acceptance rule following the
//! Bayesian structure-search tradition the paper cites). The search
//! terminates "once the effectiveness of an organization reaches a
//! plateau" — no significant improvement over the last
//! [`SearchConfig::plateau_iters`] proposals (the paper uses 50).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::approx::Representatives;
use crate::ctx::OrgContext;
use crate::eval::{Evaluator, NavConfig};
use crate::graph::{Organization, StateId};
use crate::ops::{self, OpKind};

/// Local-search hyper-parameters.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Navigation-model parameters (the γ of Eq 1).
    pub nav: NavConfig,
    /// Stop after this many consecutive proposals without significant
    /// improvement of the best effectiveness (paper: 50).
    pub plateau_iters: usize,
    /// Minimum absolute effectiveness gain counted as "significant".
    pub min_improvement: f64,
    /// Hard cap on proposals, as a safety net.
    pub max_iters: usize,
    /// Representative-set size as a fraction of the attributes (§3.4).
    /// `1.0` = exact evaluation; the paper's approximate runs use `0.1`.
    pub rep_fraction: f64,
    /// Acceptance sharpening β: a degrading proposal is accepted with
    /// probability `(P(T|O') / P(T|O))^β`. β = 1 is the paper's literal
    /// Eq 9; because near-optimal organizations differ by tiny *relative*
    /// amounts (ratios ≈ 0.999), β = 1 accepts almost every degradation
    /// and the walk becomes undirected. The default β keeps the Metropolis
    /// character (occasional uphill escapes) while giving the walk a real
    /// drift toward better organizations.
    pub acceptance_power: f64,
    /// RNG seed for proposal choice and Metropolis acceptance.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            nav: NavConfig::default(),
            plateau_iters: 50,
            min_improvement: 1e-6,
            max_iters: 5_000,
            rep_fraction: 1.0,
            acceptance_power: 400.0,
            seed: 0x0DD5_EA4C,
        }
    }
}

/// Per-proposal record (feeds the Figure 3 pruning analysis).
#[derive(Clone, Copy, Debug)]
pub struct IterStats {
    /// Which operation was proposed (`None` when no operation was
    /// applicable at the chosen state).
    pub op: Option<OpKind>,
    /// Whether the proposal was accepted.
    pub accepted: bool,
    /// Effectiveness after the proposal was resolved.
    pub effectiveness: f64,
    /// States whose reach probabilities were re-evaluated.
    pub states_visited: usize,
    /// Alive states at proposal time.
    pub states_alive: usize,
    /// Representative discovery probabilities re-evaluated.
    pub queries_evaluated: usize,
    /// Attributes covered by those representatives.
    pub attrs_covered: usize,
}

/// Summary of one optimization run.
#[derive(Clone, Debug)]
pub struct SearchStats {
    /// Effectiveness of the initial organization.
    pub initial_effectiveness: f64,
    /// Effectiveness of the final organization.
    pub final_effectiveness: f64,
    /// Total proposals made.
    pub iterations: usize,
    /// Accepted proposals.
    pub accepted: usize,
    /// Wall-clock duration of the search.
    pub duration: std::time::Duration,
    /// Number of evaluation queries (representatives).
    pub n_queries: usize,
    /// Per-proposal records.
    pub iter_stats: Vec<IterStats>,
}

impl SearchStats {
    /// Mean fraction of states re-evaluated per proposal (Figure 3b).
    pub fn mean_state_fraction(&self) -> f64 {
        mean(
            self.iter_stats
                .iter()
                .filter(|s| s.op.is_some())
                .map(|s| s.states_visited as f64 / s.states_alive.max(1) as f64),
        )
    }

    /// Mean fraction of attributes whose discovery probability was
    /// re-evaluated per proposal, counting each representative as covering
    /// its partition (Figure 3a, exact mode).
    pub fn mean_attr_fraction(&self, n_attrs: usize) -> f64 {
        mean(
            self.iter_stats
                .iter()
                .filter(|s| s.op.is_some())
                .map(|s| s.attrs_covered as f64 / n_attrs.max(1) as f64),
        )
    }

    /// Mean fraction of *evaluations performed* relative to the attribute
    /// count (Figure 3a, approximate mode — the paper's ≈6%).
    pub fn mean_eval_fraction(&self, n_attrs: usize) -> f64 {
        mean(
            self.iter_stats
                .iter()
                .filter(|s| s.op.is_some())
                .map(|s| s.queries_evaluated as f64 / n_attrs.max(1) as f64),
        )
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Optimize `org` in place. Returns the run statistics.
pub fn optimize(ctx: &OrgContext, org: &mut Organization, cfg: &SearchConfig) -> SearchStats {
    let start = std::time::Instant::now();
    let reps = if cfg.rep_fraction >= 1.0 {
        Representatives::exact(ctx)
    } else {
        Representatives::kmedoids(ctx, cfg.rep_fraction, cfg.seed ^ 0x4e9d)
    };
    let mut ev = Evaluator::new(ctx, org, cfg.nav, &reps);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let initial = ev.effectiveness();
    let mut eff = initial;
    let mut best = initial;
    // The Metropolis walk (Eq 9) may wander through worse organizations; we
    // keep the best organization seen and return it ("finding an
    // organization that maximizes ...", Definition 3).
    let mut best_org: Organization = org.clone();
    let mut plateau = 0usize;
    let mut iterations = 0usize;
    let mut accepted = 0usize;
    let mut iter_stats: Vec<IterStats> = Vec::new();
    // Reachability buffers hoisted out of the proposal loop: the evaluator
    // serves them from maintained column sums, so the per-proposal cost is
    // one memcpy instead of an allocation plus an O(queries × slots) scan.
    let mut reach_sweep: Vec<f64> = Vec::new();
    let mut reach_now: Vec<f64> = Vec::new();
    let mut levels: Vec<u32> = Vec::new();

    'outer: loop {
        // One downward sweep: levels snapshotted at sweep start (copied out
        // of the organization's cache — proposals mutate the DAG mid-sweep),
        // states in each level ordered by ascending reachability.
        levels.clear();
        levels.extend_from_slice(org.levels());
        ev.reachability_into(&mut reach_sweep);
        let max_level = levels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        let mut proposed_this_sweep = false;
        for level in 1..=max_level {
            let mut at_level: Vec<StateId> = org
                .alive_ids()
                .filter(|s| levels.get(s.index()).copied() == Some(level))
                .collect();
            at_level.sort_by(|a, b| {
                reach_sweep[a.index()]
                    .partial_cmp(&reach_sweep[b.index()])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for s in at_level {
                if iterations >= cfg.max_iters {
                    break 'outer;
                }
                if !org.state(s).alive {
                    continue; // eliminated earlier in this sweep
                }
                iterations += 1;
                let states_alive = org.n_alive();
                // Current reachability guides the operation's choices.
                ev.reachability_into(&mut reach_now);
                let first_add: bool = rng.random();
                let outcome = if first_add {
                    ops::try_add_parent(org, ctx, s, &reach_now)
                        .or_else(|| ops::try_delete_parent(org, ctx, s, &reach_now))
                } else {
                    ops::try_delete_parent(org, ctx, s, &reach_now)
                        .or_else(|| ops::try_add_parent(org, ctx, s, &reach_now))
                };
                let Some(outcome) = outcome else {
                    plateau += 1;
                    iter_stats.push(IterStats {
                        op: None,
                        accepted: false,
                        effectiveness: eff,
                        states_visited: 0,
                        states_alive,
                        queries_evaluated: 0,
                        attrs_covered: 0,
                    });
                    if plateau >= cfg.plateau_iters {
                        break 'outer;
                    }
                    continue;
                };
                proposed_this_sweep = true;
                let kind = outcome.kind;
                let (undo_ev, delta) = ev.apply_delta(ctx, org, &outcome.dirty_parents);
                let new_eff = ev.effectiveness();
                // Metropolis acceptance (Eq 9).
                let accept = if new_eff >= eff || eff <= 0.0 {
                    true
                } else {
                    let ratio = (new_eff / eff).powf(cfg.acceptance_power);
                    rng.random::<f64>() < ratio
                };
                if accept {
                    accepted += 1;
                    eff = new_eff;
                } else {
                    ev.rollback(undo_ev);
                    ops::undo(org, ctx, outcome);
                }
                if eff > best + cfg.min_improvement {
                    best = eff;
                    best_org = org.clone();
                    plateau = 0;
                } else {
                    if eff > best {
                        best = eff;
                        best_org = org.clone();
                    }
                    plateau += 1;
                }
                iter_stats.push(IterStats {
                    op: Some(kind),
                    accepted: accept,
                    effectiveness: eff,
                    states_visited: delta.states_visited,
                    states_alive,
                    queries_evaluated: delta.queries_evaluated,
                    attrs_covered: delta.attrs_covered,
                });
                if plateau >= cfg.plateau_iters {
                    break 'outer;
                }
            }
        }
        if !proposed_this_sweep {
            break; // nothing applicable anywhere — e.g. a flat organization
        }
    }
    if best > eff {
        *org = best_org;
        eff = best;
    }
    SearchStats {
        initial_effectiveness: initial,
        final_effectiveness: eff,
        iterations,
        accepted,
        duration: start.elapsed(),
        n_queries: ev.n_queries(),
        iter_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{clustering_org, flat_org};
    use dln_synth::TagCloudConfig;

    fn ctx() -> OrgContext {
        let bench = TagCloudConfig::small().generate();
        OrgContext::full(&bench.lake)
    }

    #[test]
    fn optimization_improves_clustering_org() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            max_iters: 300,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        org.validate(&ctx).expect("valid after optimization");
        // The informed dendrogram can already be locally optimal (see
        // EXPERIMENTS.md); the search must never END below it.
        assert!(
            stats.final_effectiveness >= stats.initial_effectiveness,
            "search must not lose effectiveness: {} -> {}",
            stats.initial_effectiveness,
            stats.final_effectiveness
        );
        assert!(stats.iterations > 0);
        assert_eq!(stats.iterations, stats.iter_stats.len());
    }

    #[test]
    fn optimization_recovers_from_random_initialization() {
        // Where the local search demonstrably earns its keep: repairing an
        // uninformed initial organization.
        let ctx = ctx();
        let mut org = crate::init::random_org(&ctx, 77);
        let cfg = SearchConfig {
            max_iters: 800,
            plateau_iters: 150,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        org.validate(&ctx).expect("valid after optimization");
        assert!(
            stats.final_effectiveness > stats.initial_effectiveness,
            "search must repair a random hierarchy: {} -> {}",
            stats.initial_effectiveness,
            stats.final_effectiveness
        );
    }

    #[test]
    fn final_effectiveness_matches_fresh_evaluation() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            max_iters: 150,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        let reps = Representatives::exact(&ctx);
        let fresh = Evaluator::new(&ctx, &org, cfg.nav, &reps);
        assert!(
            (stats.final_effectiveness - fresh.effectiveness()).abs() < 1e-9,
            "incremental bookkeeping drifted: {} vs {}",
            stats.final_effectiveness,
            fresh.effectiveness()
        );
    }

    #[test]
    fn flat_org_terminates_without_proposals() {
        // In a flat org neither op applies anywhere; the search must exit.
        let ctx = ctx();
        let mut org = flat_org(&ctx);
        let cfg = SearchConfig {
            plateau_iters: 10_000, // force the no-proposal exit path
            max_iters: 10_000,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        assert_eq!(stats.accepted, 0);
        assert!(stats.iter_stats.iter().all(|s| s.op.is_none()));
    }

    #[test]
    fn plateau_terminates_search() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            plateau_iters: 5,
            min_improvement: 10.0, // nothing is ever significant
            max_iters: 10_000,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        assert!(
            stats.iterations <= 6,
            "plateau of 5 must stop quickly, ran {}",
            stats.iterations
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let ctx = ctx();
        let run = |seed: u64| {
            let mut org = clustering_org(&ctx);
            let cfg = SearchConfig {
                max_iters: 100,
                seed,
                ..Default::default()
            };
            optimize(&ctx, &mut org, &cfg).final_effectiveness
        };
        assert_eq!(run(3).to_bits(), run(3).to_bits());
    }

    #[test]
    fn approximate_search_runs_and_improves() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            rep_fraction: 0.1,
            max_iters: 200,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        org.validate(&ctx).expect("valid");
        assert!(stats.n_queries < ctx.n_attrs() / 5);
        // Approximation evaluates far fewer discovery probabilities.
        let eval_frac = stats.mean_eval_fraction(ctx.n_attrs());
        assert!(
            eval_frac < 0.2,
            "approx mode should evaluate few queries per iter ({eval_frac})"
        );
    }

    #[test]
    fn pruning_fractions_are_below_one() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            max_iters: 150,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        let sf = stats.mean_state_fraction();
        assert!(sf > 0.0 && sf < 1.0, "state fraction {sf}");
        let af = stats.mean_attr_fraction(ctx.n_attrs());
        assert!(af > 0.0 && af <= 1.0, "attr fraction {af}");
    }
}
