//! The local-search construction algorithm (§3.3).
//!
//! Starting from an initial organization (usually the agglomerative
//! clustering of [`crate::init::clustering_org`]), the algorithm performs
//! downward sweeps from the root. Within each level, states are visited in
//! ascending reachability (Eq 10) — the least discoverable states get
//! attention first — and for each a modification (`ADD_PARENT` or
//! `DELETE_PARENT`) is proposed. A proposal that increases organization
//! effectiveness is accepted; otherwise it is accepted with probability
//! `P(T|O') / P(T|O)` (Eq 9, a Metropolis acceptance rule following the
//! Bayesian structure-search tradition the paper cites). The search
//! terminates "once the effectiveness of an organization reaches a
//! plateau" — no significant improvement over the last
//! [`SearchConfig::plateau_iters`] proposals (the paper uses 50).
//!
//! ## Speculative proposal batching
//!
//! With [`SearchConfig::batch_size`] `B > 1` the walk drafts up to `B`
//! candidate targets per round — drawing each candidate's operation-order
//! bit up front, which preserves the serial RNG stream — evaluates the
//! drafts speculatively, and resolves them in the fixed visit order with
//! the ordinary Metropolis test. The first accepted candidate wins the
//! round; later drafts are cancelled (their evaluation cost is still
//! charged to the stats) and the sweep resumes right after the winner.
//! Speculations are evaluated on forked organization + evaluator replicas
//! when more than one worker is available, and interleaved with the
//! resolution on the master otherwise; both schedules produce bit-identical
//! results, and `B = 1` reproduces the serial walk ([`optimize_reference`])
//! bit-for-bit. See DESIGN.md §5b for the resolution protocol and the
//! determinism argument.
//!
//! ## Crash safety: deadline, checkpoint, resume
//!
//! Long runs (the paper's Socrata scale is multi-hour) survive
//! interruption: [`SearchConfig::deadline`] bounds wall-clock and stops
//! the walk gracefully at a round boundary with
//! [`StopReason::Deadline`]; [`SearchConfig::checkpoint`] periodically
//! persists a [`Checkpoint`] (committed-op log, RNG state, sweep cursor,
//! counters, trajectory) from which [`resume`] continues **bit-identically**
//! — the op log replays against the initial organization through the same
//! incremental evaluator, and rejected proposals roll back bit-exactly, so
//! the replayed state equals the live state at the checkpointed round, bit
//! for bit. Checkpoints only land at round boundaries, where the serial
//! RNG stream is well-defined even under speculative batching. Three
//! `dln-fault` failpoints exercise the machinery: `search.kill` (simulated
//! crash at a round boundary), `checkpoint.torn` (partial checkpoint
//! write, rejected by checksum on load), and `search.spec_panic` (a
//! panicking speculative draft evaluation — caught, the poisoned replica
//! discarded, and the round degraded to the lazy master-only schedule,
//! which produces the same result as the fault-free run). See DESIGN.md
//! §5c.

use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use dln_fault::{DlnError, DlnResult};

use crate::approx::Representatives;
use crate::checkpoint::{self, Checkpoint, CheckpointConfig, CursorSnapshot};
use crate::ctx::OrgContext;
use crate::eval::{DeltaStats, Evaluator, NavConfig};
use crate::graph::{Organization, StateId};
use crate::ops::{self, OpKind};

/// Local-search hyper-parameters.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Navigation-model parameters (the γ of Eq 1).
    pub nav: NavConfig,
    /// Stop after this many consecutive proposals without significant
    /// improvement of the best effectiveness (paper: 50).
    pub plateau_iters: usize,
    /// Minimum absolute effectiveness gain counted as "significant".
    pub min_improvement: f64,
    /// Hard cap on proposals, as a safety net.
    pub max_iters: usize,
    /// Representative-set size as a fraction of the attributes (§3.4).
    /// `1.0` = exact evaluation; the paper's approximate runs use `0.1`.
    pub rep_fraction: f64,
    /// Acceptance sharpening β: a degrading proposal is accepted with
    /// probability `(P(T|O') / P(T|O))^β`. β = 1 is the paper's literal
    /// Eq 9; because near-optimal organizations differ by tiny *relative*
    /// amounts (ratios ≈ 0.999), β = 1 accepts almost every degradation
    /// and the walk becomes undirected. The default β keeps the Metropolis
    /// character (occasional uphill escapes) while giving the walk a real
    /// drift toward better organizations.
    pub acceptance_power: f64,
    /// Speculative proposal-batch width `B`: how many candidate operations
    /// are drafted and evaluated per resolution round. `1` reproduces the
    /// serial walk bit-for-bit; larger widths trade redundant speculative
    /// evaluations for parallelism across worker replicas. Results depend
    /// on `B` but never on the worker count. Defaults to the `DLN_BATCH`
    /// environment variable, else 1.
    pub batch_size: usize,
    /// RNG seed for proposal choice and Metropolis acceptance.
    pub seed: u64,
    /// Wall-clock budget. Checked at round boundaries; when exceeded the
    /// run writes a final checkpoint (if checkpointing is configured),
    /// restores the best organization seen and returns with
    /// [`StopReason::Deadline`]. Defaults to the `DLN_DEADLINE_MS`
    /// environment variable, else unlimited. Does not affect the walk
    /// itself — a deadline run resumed to completion is bit-identical to
    /// an uninterrupted one.
    pub deadline: Option<Duration>,
    /// Periodic checkpointing: where to write and how often (in resolution
    /// rounds). Defaults to the `DLN_CKPT_PATH` / `DLN_CKPT_EVERY`
    /// environment variables, else off. Write failures degrade to a
    /// warning — a failed checkpoint never aborts the search.
    pub checkpoint: Option<CheckpointConfig>,
    /// Shard policy for sharded construction ([`crate::shard`]): how many
    /// embedding clusters the dimension's tags are partitioned into, each
    /// shard optimized independently (in parallel) and the shard roots
    /// stitched under a top-level router state.
    /// [`ShardPolicy::Fixed`]`(1)` is the ordinary single-organization
    /// path, reproduced bit-for-bit; [`ShardPolicy::Auto`] picks the count
    /// from the knee of the tag-similarity k-medoids cost curve
    /// (`dln_cluster::auto_partition_k`). Defaults to the `DLN_SHARDS`
    /// environment variable (`auto` or an integer ≥ 1), else `Fixed(1)`.
    /// Excluded from the checkpoint fingerprint: the knob routes
    /// construction *around* [`optimize`], which each shard still enters
    /// with `Fixed(1)`.
    pub shards: ShardPolicy,
    /// Optional per-table demand weights for the objective (one per local
    /// table; see [`Evaluator::set_table_weights`]): the feedback loop's
    /// way of steering the search toward tables users actually look for.
    /// `None` (the default) is the paper's uniform Eq 6 objective,
    /// bit-identical to a config without this knob. `Some` changes the
    /// walk, so it participates in the checkpoint fingerprint.
    pub table_weights: Option<Vec<f64>>,
}

/// How sharded construction ([`crate::shard`]) chooses its shard count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Exactly this many shards (clamped to the dimension's tag count;
    /// `1` means unsharded).
    Fixed(usize),
    /// Data-driven: sweep the k-medoids cost spectrum over the dimension's
    /// tags and split at its knee — more shards for lakes whose tag space
    /// genuinely decomposes, none for tight single-topic dimensions.
    Auto,
}

impl Default for ShardPolicy {
    /// `Fixed(1)` — the unsharded path, bit-identical to the classic
    /// single-organization build.
    fn default() -> Self {
        ShardPolicy::Fixed(1)
    }
}

impl ShardPolicy {
    /// The fixed count, if this policy is [`ShardPolicy::Fixed`].
    pub fn fixed(self) -> Option<usize> {
        match self {
            ShardPolicy::Fixed(k) => Some(k),
            ShardPolicy::Auto => None,
        }
    }
}

impl std::fmt::Display for ShardPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardPolicy::Fixed(k) => write!(f, "{k}"),
            ShardPolicy::Auto => write!(f, "auto"),
        }
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            nav: NavConfig::default(),
            plateau_iters: 50,
            min_improvement: 1e-6,
            max_iters: 5_000,
            rep_fraction: 1.0,
            acceptance_power: 400.0,
            batch_size: batch_size_from_env(),
            seed: 0x0DD5_EA4C,
            deadline: deadline_from_env(),
            checkpoint: checkpoint_from_env(),
            shards: shards_from_env(),
            table_weights: None,
        }
    }
}

/// The `DLN_SHARDS` environment override for [`SearchConfig::shards`]:
/// `auto` (case-insensitive) selects [`ShardPolicy::Auto`], an integer ≥ 1
/// selects [`ShardPolicy::Fixed`]; anything else falls back to `Fixed(1)`.
fn shards_from_env() -> ShardPolicy {
    let Ok(raw) = std::env::var("DLN_SHARDS") else {
        return ShardPolicy::Fixed(1);
    };
    let raw = raw.trim();
    if raw.eq_ignore_ascii_case("auto") {
        return ShardPolicy::Auto;
    }
    raw.parse::<usize>()
        .ok()
        .filter(|&s| s >= 1)
        .map(ShardPolicy::Fixed)
        .unwrap_or(ShardPolicy::Fixed(1))
}

/// The `DLN_BATCH` environment override for [`SearchConfig::batch_size`]
/// (ignored unless it parses to ≥ 1).
fn batch_size_from_env() -> usize {
    std::env::var("DLN_BATCH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&b| b >= 1)
        .unwrap_or(1)
}

/// The `DLN_DEADLINE_MS` environment override for
/// [`SearchConfig::deadline`] (ignored unless it parses).
fn deadline_from_env() -> Option<Duration> {
    std::env::var("DLN_DEADLINE_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
}

/// The `DLN_CKPT_PATH` / `DLN_CKPT_EVERY` environment overrides for
/// [`SearchConfig::checkpoint`] (off unless a non-empty path is set;
/// interval defaults to every 64 rounds).
fn checkpoint_from_env() -> Option<CheckpointConfig> {
    let path = std::env::var("DLN_CKPT_PATH").ok()?;
    let path = path.trim();
    if path.is_empty() {
        return None;
    }
    let every_rounds = std::env::var("DLN_CKPT_EVERY")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(64);
    Some(CheckpointConfig {
        path: std::path::PathBuf::from(path),
        every_rounds,
    })
}

/// Fingerprint of the walk-relevant parts of a [`SearchConfig`] (the
/// deadline and checkpoint knobs are excluded — they never change the
/// trajectory; neither does the worker count, which is not part of the
/// config at all). Stored in checkpoints so a resume under a different
/// configuration is refused instead of silently diverging.
fn config_fingerprint(cfg: &SearchConfig) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x100_0000_01b3)
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = mix(h, cfg.seed);
    h = mix(h, cfg.batch_size.max(1) as u64);
    h = mix(h, cfg.plateau_iters as u64);
    h = mix(h, cfg.max_iters as u64);
    h = mix(h, cfg.min_improvement.to_bits());
    h = mix(h, cfg.acceptance_power.to_bits());
    h = mix(h, cfg.rep_fraction.to_bits());
    h = mix(h, cfg.nav.gamma.to_bits() as u64);
    // Only mixed when present, so `None` fingerprints are byte-identical
    // to configs (and checkpoints) predating this knob.
    if let Some(w) = &cfg.table_weights {
        h = mix(h, w.len() as u64 + 1);
        for v in w {
            h = mix(h, v.to_bits());
        }
    }
    h
}

/// Per-proposal record (feeds the Figure 3 pruning analysis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterStats {
    /// Which operation was proposed (`None` when no operation was
    /// applicable at the chosen state).
    pub op: Option<OpKind>,
    /// Whether the proposal was accepted.
    pub accepted: bool,
    /// Effectiveness after the proposal was resolved.
    pub effectiveness: f64,
    /// States whose reach probabilities were re-evaluated. For the winner
    /// of a speculative batch this includes the cancelled speculations of
    /// its round (the work was really performed — or would have been under
    /// eager evaluation — so the pruning analysis must count it).
    pub states_visited: usize,
    /// Alive states at proposal time (batch draft time under batching).
    pub states_alive: usize,
    /// Representative discovery probabilities re-evaluated (batch total on
    /// winner entries, like `states_visited`).
    pub queries_evaluated: usize,
    /// Attributes covered by those representatives (batch total on winner
    /// entries).
    pub attrs_covered: usize,
}

/// Why an optimization run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No significant improvement over the last
    /// [`SearchConfig::plateau_iters`] proposals (the paper's criterion).
    Plateau,
    /// The [`SearchConfig::max_iters`] safety cap was reached.
    MaxIters,
    /// A full sweep produced no applicable proposal anywhere (e.g. a flat
    /// organization).
    NoProposals,
    /// The wall-clock [`SearchConfig::deadline`] expired; a final
    /// checkpoint was written if checkpointing is configured, and the run
    /// can be continued bit-identically with [`resume`].
    Deadline,
    /// The `search.kill` failpoint fired (simulated crash at a round
    /// boundary; only in fault-injection runs). Unlike every other stop,
    /// the best-seen organization is *not* restored — a crash would not
    /// have restored it either.
    Killed,
}

/// Summary of one optimization run.
#[derive(Clone, Debug)]
pub struct SearchStats {
    /// Effectiveness of the initial organization.
    pub initial_effectiveness: f64,
    /// Effectiveness of the final organization.
    pub final_effectiveness: f64,
    /// Total proposals made.
    pub iterations: usize,
    /// Accepted proposals.
    pub accepted: usize,
    /// Speculative evaluations that were cancelled because an earlier
    /// candidate of their batch won the round (0 when `batch_size` is 1).
    pub speculative_evals: usize,
    /// Wall-clock duration of the search. On a resumed run this includes
    /// the wall-clock accumulated before the checkpoint.
    pub duration: std::time::Duration,
    /// Number of evaluation queries (representatives).
    pub n_queries: usize,
    /// Why the run ended.
    pub stop: StopReason,
    /// Resolution rounds completed (equals `iterations` when
    /// `batch_size` is 1 and every round resolves one proposal).
    pub rounds: usize,
    /// Per-proposal records.
    pub iter_stats: Vec<IterStats>,
}

impl SearchStats {
    /// Mean fraction of states re-evaluated per proposal (Figure 3b).
    ///
    /// Under speculative batching the winner entry of each round carries
    /// the summed cost of its cancelled speculations, so this mean counts
    /// every evaluation the search performed, not just committed ones.
    pub fn mean_state_fraction(&self) -> f64 {
        mean(
            self.iter_stats
                .iter()
                .filter(|s| s.op.is_some())
                .map(|s| s.states_visited as f64 / s.states_alive.max(1) as f64),
        )
    }

    /// Mean fraction of attributes whose discovery probability was
    /// re-evaluated per proposal, counting each representative as covering
    /// its partition (Figure 3a, exact mode). Like
    /// [`mean_state_fraction`](Self::mean_state_fraction), speculative
    /// batch work is included via the winner entries' batch sums.
    pub fn mean_attr_fraction(&self, n_attrs: usize) -> f64 {
        mean(
            self.iter_stats
                .iter()
                .filter(|s| s.op.is_some())
                .map(|s| s.attrs_covered as f64 / n_attrs.max(1) as f64),
        )
    }

    /// Mean fraction of *evaluations performed* relative to the attribute
    /// count (Figure 3a, approximate mode — the paper's ≈6%).
    pub fn mean_eval_fraction(&self, n_attrs: usize) -> f64 {
        mean(
            self.iter_stats
                .iter()
                .filter(|s| s.op.is_some())
                .map(|s| s.queries_evaluated as f64 / n_attrs.max(1) as f64),
        )
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// One drafted speculation: a target plus the operation-order bit drawn
/// for it, and where the level walk resumes if this candidate wins.
#[derive(Clone, Copy)]
struct Draft {
    target: StateId,
    first_add: bool,
    resume_at: usize,
}

/// A speculation's evaluation, as recorded by a worker replica.
#[derive(Clone)]
struct SpecResult {
    /// The operation the proposal resolved to (`None`: nothing applicable).
    kind: Option<OpKind>,
    /// Effectiveness the operation would produce.
    new_eff: f64,
    /// Evaluation cost counters.
    stats: DeltaStats,
}

/// A worker's private copy of the search state, kept in lock-step with the
/// master by replaying every committed operation.
struct Replica {
    org: Organization,
    ev: Evaluator,
}

/// The Metropolis test (Eq 9, sharpened by `acceptance_power`). Draws from
/// the RNG only for a degrading proposal with positive current
/// effectiveness — the exact condition of the serial walk, so the RNG
/// stream is preserved under batching.
fn accept_decision(rng: &mut StdRng, cfg: &SearchConfig, new_eff: f64, eff: f64) -> bool {
    if new_eff >= eff || eff <= 0.0 {
        true
    } else {
        let ratio = (new_eff / eff).powf(cfg.acceptance_power);
        rng.random::<f64>() < ratio
    }
}

/// Best-so-far tracking shared by every resolution outcome: the Metropolis
/// walk may wander through worse organizations, so the best organization
/// seen is kept and restored at the end ("finding an organization that
/// maximizes ...", Definition 3).
fn track_best(
    org: &Organization,
    eff: f64,
    cfg: &SearchConfig,
    best: &mut f64,
    best_org: &mut Organization,
    plateau: &mut usize,
) {
    if eff > *best + cfg.min_improvement {
        *best = eff;
        *best_org = org.clone();
        *plateau = 0;
    } else {
        if eff > *best {
            *best = eff;
            *best_org = org.clone();
        }
        *plateau += 1;
    }
}

/// Evaluate one speculation on a replica: propose, apply, measure, and
/// roll everything back so the replica stays at the round's base state.
fn speculate(rep: &mut Replica, ctx: &OrgContext, d: Draft, reach: &[f64]) -> SpecResult {
    let Some(outcome) = ops::propose(&mut rep.org, ctx, d.target, reach, d.first_add) else {
        return SpecResult {
            kind: None,
            new_eff: 0.0,
            stats: DeltaStats::default(),
        };
    };
    let kind = outcome.kind;
    let (undo_ev, stats) = rep.ev.apply_delta(ctx, &rep.org, &outcome.dirty_parents);
    let new_eff = rep.ev.effectiveness();
    rep.ev.rollback(undo_ev);
    ops::undo(&mut rep.org, ctx, outcome);
    SpecResult {
        kind: Some(kind),
        new_eff,
        stats,
    }
}

/// Replay a committed operation on every replica (in parallel — replicas
/// are independent). `reach` must be the reachability snapshot the master
/// committed under, so the replay resolves to the identical operation.
fn sync_replicas(
    replicas: &mut [Replica],
    ctx: &OrgContext,
    kind: OpKind,
    target: StateId,
    reach: &[f64],
) {
    if replicas.is_empty() {
        return;
    }
    std::thread::scope(|scope| {
        for rep in replicas.iter_mut() {
            scope.spawn(move || {
                rayon::run_inline(|| {
                    let Some(outcome) = ops::try_op(&mut rep.org, ctx, target, reach, kind) else {
                        unreachable!("committed op replays on a synced replica")
                    };
                    let _ = rep.ev.apply_delta(ctx, &rep.org, &outcome.dirty_parents);
                })
            });
        }
    });
}

/// The live sweep cursor: where the level walk currently is. The owned
/// twin of [`CursorSnapshot`] (which is its wire form in checkpoints).
struct Cursor {
    /// Level snapshot taken at sweep start (`u32::MAX` = unreachable).
    levels: Vec<u32>,
    /// Sweep-start reachability; orders every level visit list of this
    /// sweep.
    reach_sweep: Vec<f64>,
    /// Deepest level of this sweep.
    max_level: u32,
    /// Level currently being walked (0: sweep not yet entered a level).
    level: u32,
    /// Visit list of the current level.
    at_level: Vec<StateId>,
    /// Next position in `at_level`.
    idx: usize,
    /// Whether any proposal applied so far in this sweep.
    proposed_this_sweep: bool,
}

impl Cursor {
    /// Begin a new downward sweep: snapshot levels (copied out of the
    /// organization's cache — proposals mutate the DAG mid-sweep) and the
    /// sweep-start reachability. The cursor starts above level 1; the
    /// positioning loop descends into it.
    fn start_sweep(org: &Organization, ev: &Evaluator) -> Cursor {
        let levels = org.levels().to_vec();
        let mut reach_sweep = Vec::new();
        ev.reachability_into(&mut reach_sweep);
        let max_level = levels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        Cursor {
            levels,
            reach_sweep,
            max_level,
            level: 0,
            at_level: Vec::new(),
            idx: 0,
            proposed_this_sweep: false,
        }
    }

    /// Build the visit list of `level`: alive states at that level of the
    /// sweep snapshot, in ascending sweep-start reachability.
    fn descend(&mut self, org: &Organization) {
        self.level += 1;
        let level = self.level;
        self.at_level = org
            .alive_ids()
            .filter(|s| self.levels.get(s.index()).copied() == Some(level))
            .collect();
        self.at_level.sort_by(|a, b| {
            self.reach_sweep[a.index()]
                .partial_cmp(&self.reach_sweep[b.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.idx = 0;
    }

    fn to_snapshot(&self) -> CursorSnapshot {
        CursorSnapshot {
            levels: self.levels.clone(),
            reach_sweep: self.reach_sweep.clone(),
            max_level: self.max_level,
            level: self.level,
            at_level: self.at_level.iter().map(|s| s.0).collect(),
            idx: self.idx as u64,
            proposed_this_sweep: self.proposed_this_sweep,
        }
    }

    fn from_snapshot(s: &CursorSnapshot) -> Cursor {
        Cursor {
            levels: s.levels.clone(),
            reach_sweep: s.reach_sweep.clone(),
            max_level: s.max_level,
            level: s.level,
            at_level: s.at_level.iter().map(|&i| StateId(i)).collect(),
            idx: s.idx as usize,
            proposed_this_sweep: s.proposed_this_sweep,
        }
    }
}

/// The checkpointable search state: everything that evolves round to round
/// except the organization and the evaluator, which are deterministic
/// replays of `op_log` (rejected proposals roll back bit-exactly, so the
/// replay lands on the identical bits).
struct RunState {
    rng: StdRng,
    eff: f64,
    best: f64,
    best_org: Organization,
    /// How many leading ops of `op_log` were committed when `best_org` was
    /// captured (the best organization always coincides with a post-commit
    /// state, so the count pins it exactly).
    best_at_ops: u64,
    plateau: usize,
    iterations: usize,
    accepted: usize,
    speculative_evals: usize,
    rounds: u64,
    iter_stats: Vec<IterStats>,
    /// Committed operations in order: `(target slot, encoded kind)`.
    op_log: Vec<(u32, u8)>,
    cursor: Cursor,
}

impl RunState {
    /// Best-so-far tracking shared by every resolution outcome: the
    /// Metropolis walk may wander through worse organizations, so the best
    /// organization seen is kept and restored at the end ("finding an
    /// organization that maximizes ...", Definition 3).
    fn track_best(&mut self, org: &Organization, cfg: &SearchConfig) {
        if self.eff > self.best + cfg.min_improvement {
            self.best = self.eff;
            self.best_org = org.clone();
            self.best_at_ops = self.op_log.len() as u64;
            self.plateau = 0;
        } else {
            if self.eff > self.best {
                self.best = self.eff;
                self.best_org = org.clone();
                self.best_at_ops = self.op_log.len() as u64;
            }
            self.plateau += 1;
        }
    }

    /// Snapshot the run into a serializable [`Checkpoint`].
    fn to_checkpoint(
        &self,
        config_fingerprint: u64,
        init_fingerprint: u64,
        initial: f64,
        elapsed: Duration,
    ) -> Checkpoint {
        Checkpoint {
            config_fingerprint,
            init_fingerprint,
            rng_state: self.rng.state(),
            iterations: self.iterations as u64,
            accepted: self.accepted as u64,
            speculative_evals: self.speculative_evals as u64,
            plateau: self.plateau as u64,
            rounds: self.rounds,
            eff_bits: self.eff.to_bits(),
            best_bits: self.best.to_bits(),
            initial_bits: initial.to_bits(),
            elapsed_nanos: elapsed.as_nanos() as u64,
            best_at_ops: self.best_at_ops,
            op_log: self.op_log.clone(),
            iter_stats: self.iter_stats.clone(),
            cursor: self.cursor.to_snapshot(),
        }
    }

    /// Write a checkpoint, degrading a write failure to a warning — an
    /// unwritable checkpoint path must not abort an otherwise healthy run.
    fn write_checkpoint(
        &self,
        ckpt: &CheckpointConfig,
        config_fingerprint: u64,
        init_fingerprint: u64,
        initial: f64,
        elapsed: Duration,
    ) {
        let c = self.to_checkpoint(config_fingerprint, init_fingerprint, initial, elapsed);
        if let Err(e) = c.save(&ckpt.path) {
            eprintln!(
                "warning: checkpoint write to {} failed: {e}",
                ckpt.path.display()
            );
        }
    }
}

/// Optimize `org` in place. Returns the run statistics.
///
/// With [`SearchConfig::batch_size`] = 1 this is the serial walk of
/// [`optimize_reference`], bit for bit; larger batch widths follow the
/// speculative resolution protocol described in the module docs. Honors
/// [`SearchConfig::deadline`] and [`SearchConfig::checkpoint`].
pub fn optimize(ctx: &OrgContext, org: &mut Organization, cfg: &SearchConfig) -> SearchStats {
    match run_search(ctx, org, cfg, None) {
        Ok(stats) => stats,
        // A fresh run has no checkpoint to validate or replay, and
        // checkpoint *write* failures degrade to warnings — run_search
        // only errors on the resume path.
        Err(e) => unreachable!("fresh search cannot fail: {e}"),
    }
}

/// Continue an interrupted run from `ckpt`, bit-identically: the finished
/// run (final organization, every `SearchStats` field except `duration`)
/// equals what the uninterrupted run would have produced, at any worker
/// count.
///
/// `org` must be the *initial* organization the original run started from
/// (same bits); the committed-op log replays against it. Refuses with
/// [`DlnError::InvalidConfig`] on a config or initial-organization
/// mismatch and with [`DlnError::Corrupt`] when the replayed state fails
/// the checkpoint's integrity bits.
pub fn resume(
    ctx: &OrgContext,
    org: &mut Organization,
    cfg: &SearchConfig,
    ckpt: &Checkpoint,
) -> DlnResult<SearchStats> {
    run_search(ctx, org, cfg, Some(ckpt))
}

/// The search engine behind [`optimize`] and [`resume`].
fn run_search(
    ctx: &OrgContext,
    org: &mut Organization,
    cfg: &SearchConfig,
    resume_from: Option<&Checkpoint>,
) -> DlnResult<SearchStats> {
    let start = Instant::now();
    let reps = if cfg.rep_fraction >= 1.0 {
        Representatives::exact(ctx)
    } else {
        Representatives::kmedoids(ctx, cfg.rep_fraction, cfg.seed ^ 0x4e9d)
    };
    let mut ev = Evaluator::new(ctx, org, cfg.nav, &reps);
    if let Some(w) = &cfg.table_weights {
        ev.set_table_weights(w);
    }
    let batch_size = cfg.batch_size.max(1);
    let initial = ev.effectiveness();
    let config_fp = config_fingerprint(cfg);
    let init_fp = org.fingerprint();

    let mut prior_elapsed = Duration::ZERO;
    let mut st = match resume_from {
        None => RunState {
            rng: StdRng::seed_from_u64(cfg.seed),
            eff: initial,
            best: initial,
            best_org: org.clone(),
            best_at_ops: 0,
            plateau: 0,
            iterations: 0,
            accepted: 0,
            speculative_evals: 0,
            rounds: 0,
            iter_stats: Vec::new(),
            op_log: Vec::new(),
            cursor: Cursor::start_sweep(org, &ev),
        },
        Some(ck) => {
            if ck.config_fingerprint != config_fp {
                return Err(DlnError::InvalidConfig(
                    "checkpoint was produced under a different search configuration".into(),
                ));
            }
            if ck.init_fingerprint != init_fp {
                return Err(DlnError::InvalidConfig(
                    "checkpoint was produced from a different initial organization".into(),
                ));
            }
            if initial.to_bits() != ck.initial_bits {
                return Err(DlnError::corrupt(
                    "checkpoint replay",
                    "initial effectiveness does not match the checkpoint",
                ));
            }
            // Replay the committed-op log. Each op re-resolves under the
            // reachability the master committed it under; applying it
            // through the same incremental evaluator reproduces the live
            // state bit for bit (rejected proposals rolled back
            // bit-exactly, so they left no trace).
            let mut best_org = org.clone();
            let mut reach: Vec<f64> = Vec::new();
            for (i, &(slot, kind_byte)) in ck.op_log.iter().enumerate() {
                let kind = checkpoint::decode_kind(kind_byte).ok_or_else(|| {
                    DlnError::corrupt("checkpoint replay", format!("bad op kind {kind_byte}"))
                })?;
                ev.reachability_into(&mut reach);
                let outcome =
                    ops::try_op(org, ctx, StateId(slot), &reach, kind).ok_or_else(|| {
                        DlnError::corrupt(
                            "checkpoint replay",
                            format!("op {i} ({kind:?} at slot {slot}) no longer applies"),
                        )
                    })?;
                let _ = ev.apply_delta(ctx, org, &outcome.dirty_parents);
                if (i + 1) as u64 == ck.best_at_ops {
                    best_org = org.clone();
                }
            }
            let eff = ev.effectiveness();
            if eff.to_bits() != ck.eff_bits {
                return Err(DlnError::corrupt(
                    "checkpoint replay",
                    "replayed effectiveness diverges from the checkpoint",
                ));
            }
            prior_elapsed = Duration::from_nanos(ck.elapsed_nanos);
            RunState {
                rng: StdRng::from_state(ck.rng_state),
                eff,
                best: f64::from_bits(ck.best_bits),
                best_org,
                best_at_ops: ck.best_at_ops,
                plateau: ck.plateau as usize,
                iterations: ck.iterations as usize,
                accepted: ck.accepted as usize,
                speculative_evals: ck.speculative_evals as usize,
                rounds: ck.rounds,
                iter_stats: ck.iter_stats.clone(),
                op_log: ck.op_log.clone(),
                cursor: Cursor::from_snapshot(&ck.cursor),
            }
        }
    };

    // Scratch buffers and worker replicas (rebuilt lazily; never part of
    // the checkpoint — replicas are bit-copies of the master).
    let mut reach_now: Vec<f64> = Vec::new();
    let mut replicas: Vec<Replica> = Vec::new();
    let mut drafts: Vec<Draft> = Vec::new();
    let mut results: Vec<SpecResult> = Vec::new();
    let stop;

    'outer: loop {
        // Position the cursor on the next visit-list entry, crossing level
        // and sweep boundaries as needed.
        loop {
            if st.cursor.idx < st.cursor.at_level.len() {
                break;
            }
            if st.cursor.level >= st.cursor.max_level {
                if !st.cursor.proposed_this_sweep && st.cursor.level > 0 {
                    // Nothing applicable anywhere — e.g. a flat org.
                    stop = StopReason::NoProposals;
                    break 'outer;
                }
                if st.cursor.max_level == 0 {
                    stop = StopReason::NoProposals;
                    break 'outer;
                }
                st.cursor = Cursor::start_sweep(org, &ev);
                continue;
            }
            st.cursor.descend(org);
        }
        if st.iterations >= cfg.max_iters {
            stop = StopReason::MaxIters;
            break 'outer;
        }
        if !org.state(st.cursor.at_level[st.cursor.idx]).alive {
            st.cursor.idx += 1; // eliminated earlier in this sweep
            continue;
        }
        // Draft phase: collect up to B alive targets (never more proposals
        // than max_iters still allows), drawing each candidate's
        // operation-order bit in visit order so the RNG stream matches the
        // serial walk.
        let budget = batch_size.min(cfg.max_iters - st.iterations);
        drafts.clear();
        let mut j = st.cursor.idx;
        while j < st.cursor.at_level.len() && drafts.len() < budget {
            let s = st.cursor.at_level[j];
            j += 1;
            if !org.state(s).alive {
                continue;
            }
            drafts.push(Draft {
                target: s,
                first_add: st.rng.random(),
                resume_at: j,
            });
        }
        let states_alive = org.n_alive();
        // Current reachability guides every operation of the round.
        ev.reachability_into(&mut reach_now);
        // Eager speculation: with several drafts and several workers,
        // evaluate every candidate concurrently on replicas. Otherwise
        // evaluation happens lazily below, interleaved with the resolution
        // — same results, no wasted work past the winner.
        let mut eager = drafts.len() > 1 && rayon::current_num_threads() > 1;
        if eager {
            if replicas.is_empty() {
                let w = rayon::current_num_threads().min(batch_size);
                replicas = (0..w)
                    .map(|_| Replica {
                        org: org.clone(),
                        ev: ev.fork(),
                    })
                    .collect();
            }
            results.clear();
            results.resize(
                drafts.len(),
                SpecResult {
                    kind: None,
                    new_eff: 0.0,
                    stats: DeltaStats::default(),
                },
            );
            let span = drafts
                .len()
                .div_ceil(replicas.len().min(drafts.len()))
                .max(1);
            let reach: &[f64] = &reach_now;
            let draft_slice: &[Draft] = &drafts;
            // Fault containment: a panic in a draft evaluation (the
            // `search.spec_panic` failpoint, or a real bug) is caught on
            // its own worker — letting it cross `thread::scope` would
            // abort the whole search.
            let mut poisoned = vec![false; replicas.len()];
            std::thread::scope(|scope| {
                for ((rep, poison), (chunk_res, chunk_drafts)) in replicas
                    .iter_mut()
                    .zip(poisoned.iter_mut())
                    .zip(results.chunks_mut(span).zip(draft_slice.chunks(span)))
                {
                    scope.spawn(move || {
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            rayon::run_inline(|| {
                                for (res, &d) in chunk_res.iter_mut().zip(chunk_drafts) {
                                    dln_fault::maybe_panic("search.spec_panic");
                                    *res = speculate(rep, ctx, d, reach);
                                }
                            })
                        }));
                        *poison = outcome.is_err();
                    });
                }
            });
            if poisoned.iter().any(|&p| p) {
                // A worker died mid-speculation: its replica may hold a
                // half-applied delta, so it is discarded (a survivor or
                // the master will reseed the pool next eager round), its
                // half-written results are thrown away, and the round
                // degrades to the lazy master-only schedule — which
                // produces bit-identical resolutions, so a faulted run
                // still matches the fault-free one.
                let mut keep = poisoned.iter().map(|&p| !p);
                replicas.retain(|_| keep.next().unwrap_or(true));
                results.clear();
                eager = false;
            }
        }
        // Fixed-order resolution: candidates face the Metropolis test in
        // visit order; the first acceptance wins the round and cancels the
        // rest.
        let mut next_idx = j;
        let mut plateau_stop = false;
        for i in 0..drafts.len() {
            let d = drafts[i];
            st.iterations += 1;
            if eager {
                let r = results[i].clone();
                let Some(kind) = r.kind else {
                    st.plateau += 1;
                    st.iter_stats.push(IterStats {
                        op: None,
                        accepted: false,
                        effectiveness: st.eff,
                        states_visited: 0,
                        states_alive,
                        queries_evaluated: 0,
                        attrs_covered: 0,
                    });
                    if st.plateau >= cfg.plateau_iters {
                        plateau_stop = true;
                        break;
                    }
                    continue;
                };
                st.cursor.proposed_this_sweep = true;
                let accept = accept_decision(&mut st.rng, cfg, r.new_eff, st.eff);
                if !accept {
                    // The speculation lived and died on a replica; the
                    // master never applied it.
                    st.track_best(org, cfg);
                    st.iter_stats.push(IterStats {
                        op: Some(kind),
                        accepted: false,
                        effectiveness: st.eff,
                        states_visited: r.stats.states_visited,
                        states_alive,
                        queries_evaluated: r.stats.queries_evaluated,
                        attrs_covered: r.stats.attrs_covered,
                    });
                    if st.plateau >= cfg.plateau_iters {
                        plateau_stop = true;
                        break;
                    }
                    continue;
                }
                // Winner: replay on the master (bit-identical to the
                // replica's speculative application).
                let Some(outcome) = ops::try_op(org, ctx, d.target, &reach_now, kind) else {
                    unreachable!("drafted op replays on the master")
                };
                let (_undo_ev, delta) = ev.apply_delta(ctx, org, &outcome.dirty_parents);
                let master_eff = ev.effectiveness();
                debug_assert_eq!(
                    master_eff.to_bits(),
                    r.new_eff.to_bits(),
                    "replica diverged from the master"
                );
                st.accepted += 1;
                st.eff = master_eff;
                st.op_log.push((d.target.0, checkpoint::encode_kind(kind)));
                let mut folded = delta;
                for r2 in &results[i + 1..] {
                    if r2.kind.is_some() {
                        folded.states_visited += r2.stats.states_visited;
                        folded.queries_evaluated += r2.stats.queries_evaluated;
                        folded.attrs_covered += r2.stats.attrs_covered;
                        st.speculative_evals += 1;
                    }
                }
                sync_replicas(&mut replicas, ctx, kind, d.target, &reach_now);
                st.track_best(org, cfg);
                st.iter_stats.push(IterStats {
                    op: Some(kind),
                    accepted: true,
                    effectiveness: st.eff,
                    states_visited: folded.states_visited,
                    states_alive,
                    queries_evaluated: folded.queries_evaluated,
                    attrs_covered: folded.attrs_covered,
                });
                next_idx = d.resume_at;
                if st.plateau >= cfg.plateau_iters {
                    plateau_stop = true;
                }
                break;
            } else {
                // Lazy resolution on the master.
                let outcome = ops::propose(org, ctx, d.target, &reach_now, d.first_add);
                let Some(outcome) = outcome else {
                    st.plateau += 1;
                    st.iter_stats.push(IterStats {
                        op: None,
                        accepted: false,
                        effectiveness: st.eff,
                        states_visited: 0,
                        states_alive,
                        queries_evaluated: 0,
                        attrs_covered: 0,
                    });
                    if st.plateau >= cfg.plateau_iters {
                        plateau_stop = true;
                        break;
                    }
                    continue;
                };
                st.cursor.proposed_this_sweep = true;
                let kind = outcome.kind;
                let (undo_ev, delta) = ev.apply_delta(ctx, org, &outcome.dirty_parents);
                let new_eff = ev.effectiveness();
                let accept = accept_decision(&mut st.rng, cfg, new_eff, st.eff);
                if !accept {
                    ev.rollback(undo_ev);
                    ops::undo(org, ctx, outcome);
                    st.track_best(org, cfg);
                    st.iter_stats.push(IterStats {
                        op: Some(kind),
                        accepted: false,
                        effectiveness: st.eff,
                        states_visited: delta.states_visited,
                        states_alive,
                        queries_evaluated: delta.queries_evaluated,
                        attrs_covered: delta.attrs_covered,
                    });
                    if st.plateau >= cfg.plateau_iters {
                        plateau_stop = true;
                        break;
                    }
                    continue;
                }
                st.accepted += 1;
                st.eff = new_eff;
                st.op_log.push((d.target.0, checkpoint::encode_kind(kind)));
                let mut folded = delta;
                if i + 1 < drafts.len() {
                    // Charge the cancelled speculations of this round as
                    // eager evaluation would have: lift the winner's
                    // structural change (the evaluator delta stays applied
                    // — the census below reads only the graph), measure
                    // each trailing draft against the round's base
                    // organization, then replay the winner.
                    ops::undo(org, ctx, outcome);
                    for d2 in &drafts[i + 1..] {
                        if let Some(o2) =
                            ops::propose(org, ctx, d2.target, &reach_now, d2.first_add)
                        {
                            let s2 = ev.delta_stats_only(org, &o2.dirty_parents);
                            folded.states_visited += s2.states_visited;
                            folded.queries_evaluated += s2.queries_evaluated;
                            folded.attrs_covered += s2.attrs_covered;
                            st.speculative_evals += 1;
                            ops::undo(org, ctx, o2);
                        }
                    }
                    let Some(replay) = ops::try_op(org, ctx, d.target, &reach_now, kind) else {
                        unreachable!("winner replays after the speculation census")
                    };
                    debug_assert_eq!(replay.kind, kind);
                }
                sync_replicas(&mut replicas, ctx, kind, d.target, &reach_now);
                st.track_best(org, cfg);
                st.iter_stats.push(IterStats {
                    op: Some(kind),
                    accepted: true,
                    effectiveness: st.eff,
                    states_visited: folded.states_visited,
                    states_alive,
                    queries_evaluated: folded.queries_evaluated,
                    attrs_covered: folded.attrs_covered,
                });
                next_idx = d.resume_at;
                if st.plateau >= cfg.plateau_iters {
                    plateau_stop = true;
                }
                break;
            }
        }
        st.cursor.idx = next_idx;
        if plateau_stop {
            stop = StopReason::Plateau;
            break 'outer;
        }
        // Round-boundary services, in crash-consistent order: count the
        // round; simulate a crash (kill fires *before* the periodic write,
        // so the rounds since the last checkpoint are genuinely lost);
        // periodic checkpoint; graceful deadline (always checkpoints).
        st.rounds += 1;
        if dln_fault::should_fail("search.kill") {
            stop = StopReason::Killed;
            break 'outer;
        }
        if let Some(ckpt) = &cfg.checkpoint {
            if ckpt.every_rounds > 0 && st.rounds % ckpt.every_rounds as u64 == 0 {
                st.write_checkpoint(
                    ckpt,
                    config_fp,
                    init_fp,
                    initial,
                    prior_elapsed + start.elapsed(),
                );
            }
        }
        if let Some(limit) = cfg.deadline {
            if prior_elapsed + start.elapsed() >= limit {
                stop = StopReason::Deadline;
                break 'outer;
            }
        }
    }
    if stop == StopReason::Deadline {
        if let Some(ckpt) = &cfg.checkpoint {
            st.write_checkpoint(
                ckpt,
                config_fp,
                init_fp,
                initial,
                prior_elapsed + start.elapsed(),
            );
        }
    }
    let mut eff = st.eff;
    // A simulated crash keeps the walk's current organization — a real
    // crash would not have restored the best either; the restore happens
    // at the end of the *resumed* run instead.
    if stop != StopReason::Killed && st.best > eff {
        *org = st.best_org;
        eff = st.best;
    }
    Ok(SearchStats {
        initial_effectiveness: initial,
        final_effectiveness: eff,
        iterations: st.iterations,
        accepted: st.accepted,
        speculative_evals: st.speculative_evals,
        duration: prior_elapsed + start.elapsed(),
        n_queries: ev.n_queries(),
        stop,
        rounds: st.rounds as usize,
        iter_stats: st.iter_stats,
    })
}

/// The pre-batching serial proposal walk, kept verbatim as the bit-identity
/// oracle for the speculative engine ([`optimize`] with `batch_size = 1`
/// must reproduce it exactly at any worker count) and as the honest A/B
/// baseline for `dln-bench`.
pub fn optimize_reference(
    ctx: &OrgContext,
    org: &mut Organization,
    cfg: &SearchConfig,
) -> SearchStats {
    let start = std::time::Instant::now();
    let reps = if cfg.rep_fraction >= 1.0 {
        Representatives::exact(ctx)
    } else {
        Representatives::kmedoids(ctx, cfg.rep_fraction, cfg.seed ^ 0x4e9d)
    };
    let mut ev = Evaluator::new(ctx, org, cfg.nav, &reps);
    if let Some(w) = &cfg.table_weights {
        ev.set_table_weights(w);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let initial = ev.effectiveness();
    let mut eff = initial;
    let mut best = initial;
    // The Metropolis walk (Eq 9) may wander through worse organizations; we
    // keep the best organization seen and return it ("finding an
    // organization that maximizes ...", Definition 3).
    let mut best_org: Organization = org.clone();
    let mut plateau = 0usize;
    let mut iterations = 0usize;
    let mut accepted = 0usize;
    let mut rounds = 0usize;
    let mut iter_stats: Vec<IterStats> = Vec::new();
    let mut reach_sweep: Vec<f64> = Vec::new();
    let mut reach_now: Vec<f64> = Vec::new();
    let mut levels: Vec<u32> = Vec::new();
    let stop;

    'outer: loop {
        levels.clear();
        levels.extend_from_slice(org.levels());
        ev.reachability_into(&mut reach_sweep);
        let max_level = levels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        let mut proposed_this_sweep = false;
        for level in 1..=max_level {
            let mut at_level: Vec<StateId> = org
                .alive_ids()
                .filter(|s| levels.get(s.index()).copied() == Some(level))
                .collect();
            at_level.sort_by(|a, b| {
                reach_sweep[a.index()]
                    .partial_cmp(&reach_sweep[b.index()])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for s in at_level {
                if iterations >= cfg.max_iters {
                    stop = StopReason::MaxIters;
                    break 'outer;
                }
                if !org.state(s).alive {
                    continue; // eliminated earlier in this sweep
                }
                iterations += 1;
                let states_alive = org.n_alive();
                // Current reachability guides the operation's choices.
                ev.reachability_into(&mut reach_now);
                let first_add: bool = rng.random();
                let outcome = ops::propose(org, ctx, s, &reach_now, first_add);
                let Some(outcome) = outcome else {
                    plateau += 1;
                    iter_stats.push(IterStats {
                        op: None,
                        accepted: false,
                        effectiveness: eff,
                        states_visited: 0,
                        states_alive,
                        queries_evaluated: 0,
                        attrs_covered: 0,
                    });
                    if plateau >= cfg.plateau_iters {
                        stop = StopReason::Plateau;
                        break 'outer;
                    }
                    rounds += 1;
                    continue;
                };
                proposed_this_sweep = true;
                let kind = outcome.kind;
                let (undo_ev, delta) = ev.apply_delta(ctx, org, &outcome.dirty_parents);
                let new_eff = ev.effectiveness();
                // Metropolis acceptance (Eq 9).
                let accept = accept_decision(&mut rng, cfg, new_eff, eff);
                if accept {
                    accepted += 1;
                    eff = new_eff;
                } else {
                    ev.rollback(undo_ev);
                    ops::undo(org, ctx, outcome);
                }
                track_best(org, eff, cfg, &mut best, &mut best_org, &mut plateau);
                iter_stats.push(IterStats {
                    op: Some(kind),
                    accepted: accept,
                    effectiveness: eff,
                    states_visited: delta.states_visited,
                    states_alive,
                    queries_evaluated: delta.queries_evaluated,
                    attrs_covered: delta.attrs_covered,
                });
                if plateau >= cfg.plateau_iters {
                    stop = StopReason::Plateau;
                    break 'outer;
                }
                rounds += 1;
            }
        }
        if !proposed_this_sweep {
            stop = StopReason::NoProposals;
            break; // nothing applicable anywhere — e.g. a flat organization
        }
    }
    if best > eff {
        *org = best_org;
        eff = best;
    }
    SearchStats {
        initial_effectiveness: initial,
        final_effectiveness: eff,
        iterations,
        accepted,
        speculative_evals: 0,
        duration: start.elapsed(),
        n_queries: ev.n_queries(),
        stop,
        rounds,
        iter_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{clustering_org, flat_org};
    use dln_synth::TagCloudConfig;

    fn ctx() -> OrgContext {
        let bench = TagCloudConfig::small().generate();
        OrgContext::full(&bench.lake)
    }

    /// Structural + topical fingerprint of the alive part of an
    /// organization, for cheap bit-identity assertions.
    fn org_fingerprint(org: &Organization) -> u64 {
        org.fingerprint()
    }

    #[test]
    fn optimization_improves_clustering_org() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            max_iters: 300,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        org.validate(&ctx).expect("valid after optimization");
        // The informed dendrogram can already be locally optimal (see
        // EXPERIMENTS.md); the search must never END below it.
        assert!(
            stats.final_effectiveness >= stats.initial_effectiveness,
            "search must not lose effectiveness: {} -> {}",
            stats.initial_effectiveness,
            stats.final_effectiveness
        );
        assert!(stats.iterations > 0);
        assert_eq!(stats.iterations, stats.iter_stats.len());
    }

    #[test]
    fn optimization_recovers_from_random_initialization() {
        // Where the local search demonstrably earns its keep: repairing an
        // uninformed initial organization.
        let ctx = ctx();
        let mut org = crate::init::random_org(&ctx, 77);
        let cfg = SearchConfig {
            max_iters: 800,
            plateau_iters: 150,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        org.validate(&ctx).expect("valid after optimization");
        assert!(
            stats.final_effectiveness > stats.initial_effectiveness,
            "search must repair a random hierarchy: {} -> {}",
            stats.initial_effectiveness,
            stats.final_effectiveness
        );
    }

    #[test]
    fn final_effectiveness_matches_fresh_evaluation() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            max_iters: 150,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        let reps = Representatives::exact(&ctx);
        let fresh = Evaluator::new(&ctx, &org, cfg.nav, &reps);
        assert!(
            (stats.final_effectiveness - fresh.effectiveness()).abs() < 1e-9,
            "incremental bookkeeping drifted: {} vs {}",
            stats.final_effectiveness,
            fresh.effectiveness()
        );
    }

    #[test]
    fn flat_org_terminates_without_proposals() {
        // In a flat org neither op applies anywhere; the search must exit.
        let ctx = ctx();
        let mut org = flat_org(&ctx);
        let cfg = SearchConfig {
            plateau_iters: 10_000, // force the no-proposal exit path
            max_iters: 10_000,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        assert_eq!(stats.accepted, 0);
        assert!(stats.iter_stats.iter().all(|s| s.op.is_none()));
    }

    #[test]
    fn plateau_terminates_search() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            plateau_iters: 5,
            min_improvement: 10.0, // nothing is ever significant
            max_iters: 10_000,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        assert!(
            stats.iterations <= 6,
            "plateau of 5 must stop quickly, ran {}",
            stats.iterations
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let ctx = ctx();
        let run = |seed: u64| {
            let mut org = clustering_org(&ctx);
            let cfg = SearchConfig {
                max_iters: 100,
                seed,
                ..Default::default()
            };
            optimize(&ctx, &mut org, &cfg).final_effectiveness
        };
        assert_eq!(run(3).to_bits(), run(3).to_bits());
    }

    #[test]
    fn approximate_search_runs_and_improves() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            rep_fraction: 0.1,
            max_iters: 200,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        org.validate(&ctx).expect("valid");
        assert!(stats.n_queries < ctx.n_attrs() / 5);
        // Approximation evaluates far fewer discovery probabilities.
        let eval_frac = stats.mean_eval_fraction(ctx.n_attrs());
        assert!(
            eval_frac < 0.2,
            "approx mode should evaluate few queries per iter ({eval_frac})"
        );
    }

    #[test]
    fn pruning_fractions_are_below_one() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            max_iters: 150,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        let sf = stats.mean_state_fraction();
        assert!(sf > 0.0 && sf < 1.0, "state fraction {sf}");
        let af = stats.mean_attr_fraction(ctx.n_attrs());
        assert!(af > 0.0 && af <= 1.0, "attr fraction {af}");
    }

    #[test]
    fn batch_of_one_matches_reference_bitwise() {
        // Property (a) of the batching PR: B = 1 is the serial walk, bit
        // for bit, at any worker count — identical trajectory (per-proposal
        // records), identical final organization.
        let ctx = ctx();
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);
            let cfg = SearchConfig {
                max_iters: 200,
                plateau_iters: 80,
                batch_size: 1,
                ..Default::default()
            };
            let mut org_a = crate::init::random_org(&ctx, 77);
            let a = optimize(&ctx, &mut org_a, &cfg);
            let mut org_b = crate::init::random_org(&ctx, 77);
            let b = optimize_reference(&ctx, &mut org_b, &cfg);
            rayon::set_num_threads(0);
            assert_eq!(
                a.final_effectiveness.to_bits(),
                b.final_effectiveness.to_bits(),
                "final effectiveness diverged at {threads} threads"
            );
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.speculative_evals, 0);
            assert_eq!(a.iter_stats, b.iter_stats);
            assert_eq!(
                org_fingerprint(&org_a),
                org_fingerprint(&org_b),
                "final organization diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn batched_search_is_thread_count_invariant() {
        // One worker takes the lazy resolution path, several workers the
        // eager replica path — the trajectories must be bit-identical.
        let ctx = ctx();
        let run = |threads: usize| {
            rayon::set_num_threads(threads);
            let cfg = SearchConfig {
                max_iters: 250,
                plateau_iters: 100,
                batch_size: 4,
                ..Default::default()
            };
            let mut org = crate::init::random_org(&ctx, 42);
            let stats = optimize(&ctx, &mut org, &cfg);
            rayon::set_num_threads(0);
            (stats, org_fingerprint(&org))
        };
        let (base, base_fp) = run(1);
        for threads in [2usize, 8] {
            let (s, fp) = run(threads);
            assert_eq!(fp, base_fp, "final org diverged at {threads} threads");
            assert_eq!(
                s.final_effectiveness.to_bits(),
                base.final_effectiveness.to_bits()
            );
            assert_eq!(s.iterations, base.iterations);
            assert_eq!(s.accepted, base.accepted);
            assert_eq!(s.speculative_evals, base.speculative_evals);
            assert_eq!(
                s.iter_stats, base.iter_stats,
                "per-proposal records diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn batched_final_effectiveness_matches_fresh_evaluation() {
        let ctx = ctx();
        rayon::set_num_threads(4);
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            max_iters: 150,
            batch_size: 4,
            ..Default::default()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        rayon::set_num_threads(0);
        org.validate(&ctx)
            .expect("valid after batched optimization");
        let reps = Representatives::exact(&ctx);
        let fresh = Evaluator::new(&ctx, &org, cfg.nav, &reps);
        assert!(
            (stats.final_effectiveness - fresh.effectiveness()).abs() < 1e-9,
            "incremental bookkeeping drifted under batching: {} vs {}",
            stats.final_effectiveness,
            fresh.effectiveness()
        );
    }

    #[test]
    fn batched_search_counts_cancelled_speculations() {
        // Satellite check: the pruning stats must include the speculative
        // work a batch performs, not just the winners'.
        let ctx = ctx();
        let cfg = SearchConfig {
            max_iters: 300,
            plateau_iters: 120,
            batch_size: 8,
            ..Default::default()
        };
        let mut org = crate::init::random_org(&ctx, 7);
        let stats = optimize(&ctx, &mut org, &cfg);
        assert!(
            stats.speculative_evals > 0,
            "a random-init walk at B = 8 must cancel some speculations"
        );
        let winner_visited: usize = stats
            .iter_stats
            .iter()
            .filter(|s| s.accepted)
            .map(|s| s.states_visited)
            .sum();
        assert!(winner_visited > 0);
    }

    /// A walk-parameter config with crash-safety knobs pinned off, so test
    /// behavior cannot depend on `DLN_DEADLINE_MS` / `DLN_CKPT_PATH` in
    /// the environment.
    fn plain_cfg() -> SearchConfig {
        SearchConfig {
            deadline: None,
            checkpoint: None,
            ..Default::default()
        }
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dln_search_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn stop_reasons_are_reported() {
        let ctx = ctx();
        // Plateau: nothing is ever significant, short plateau.
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            plateau_iters: 5,
            min_improvement: 10.0,
            ..plain_cfg()
        };
        assert_eq!(optimize(&ctx, &mut org, &cfg).stop, StopReason::Plateau);
        // MaxIters: tiny cap, huge plateau.
        let mut org = crate::init::random_org(&ctx, 3);
        let cfg = SearchConfig {
            max_iters: 10,
            plateau_iters: 10_000,
            ..plain_cfg()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        assert_eq!(stats.stop, StopReason::MaxIters);
        assert_eq!(stats.iterations, 10);
        // NoProposals: flat organizations admit neither operation.
        let mut org = flat_org(&ctx);
        let cfg = SearchConfig {
            plateau_iters: 10_000,
            max_iters: 10_000,
            ..plain_cfg()
        };
        let stats = optimize(&ctx, &mut org, &cfg);
        assert_eq!(stats.stop, StopReason::NoProposals);
        // The reference walk reports the same taxonomy.
        let mut org = flat_org(&ctx);
        assert_eq!(
            optimize_reference(&ctx, &mut org, &cfg).stop,
            StopReason::NoProposals
        );
    }

    #[test]
    fn deadline_stops_gracefully_and_resume_is_bit_identical() {
        let ctx = ctx();
        let dir = tmp_dir("deadline");
        let path = dir.join("search.ckpt");
        let walk = SearchConfig {
            max_iters: 200,
            plateau_iters: 80,
            batch_size: 2,
            ..plain_cfg()
        };
        // Uninterrupted baseline.
        let mut org_full = crate::init::random_org(&ctx, 77);
        let full = optimize(&ctx, &mut org_full, &walk);
        // Interrupted run: a zero deadline expires at the first round
        // boundary; the run must still write its final checkpoint (even
        // with periodic writes disabled) and restore the best-so-far.
        let cfg = SearchConfig {
            deadline: Some(Duration::ZERO),
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                every_rounds: 0,
            }),
            ..walk.clone()
        };
        let mut org_cut = crate::init::random_org(&ctx, 77);
        let cut = optimize(&ctx, &mut org_cut, &cfg);
        assert_eq!(cut.stop, StopReason::Deadline);
        assert_eq!(cut.rounds, 1, "a zero deadline expires after one round");
        assert!(cut.iterations < full.iterations);
        // Resume from the checkpoint file against the *initial* org.
        let ckpt = Checkpoint::load(&path).expect("deadline run wrote a final checkpoint");
        assert_eq!(ckpt.rounds(), 1);
        let mut org_res = crate::init::random_org(&ctx, 77);
        let res = resume(&ctx, &mut org_res, &walk, &ckpt).expect("resume");
        // Everything but the wall clock matches the uninterrupted run.
        assert_eq!(res.stop, full.stop);
        assert_eq!(res.rounds, full.rounds);
        assert_eq!(res.iterations, full.iterations);
        assert_eq!(res.accepted, full.accepted);
        assert_eq!(res.speculative_evals, full.speculative_evals);
        assert_eq!(
            res.final_effectiveness.to_bits(),
            full.final_effectiveness.to_bits()
        );
        assert_eq!(res.iter_stats, full.iter_stats);
        assert_eq!(org_fingerprint(&org_res), org_fingerprint(&org_full));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn periodic_checkpoints_resume_bit_identically_at_any_cut() {
        // Keep every periodic checkpoint generation (the file plus its
        // `.prev` rotation gives the last two), resume from both, and
        // check convergence to the uninterrupted run.
        let ctx = ctx();
        let dir = tmp_dir("periodic");
        let path = dir.join("search.ckpt");
        let walk = SearchConfig {
            max_iters: 120,
            plateau_iters: 60,
            batch_size: 4,
            ..plain_cfg()
        };
        let mut org_full = crate::init::random_org(&ctx, 42);
        let full = optimize(&ctx, &mut org_full, &walk);
        let cfg = SearchConfig {
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                every_rounds: 7,
            }),
            ..walk.clone()
        };
        let mut org_ck = crate::init::random_org(&ctx, 42);
        let ck_run = optimize(&ctx, &mut org_ck, &cfg);
        assert_eq!(ck_run.iter_stats, full.iter_stats);
        for p in [path.clone(), crate::persist::prev_path(&path)] {
            let ckpt = Checkpoint::load(&p).expect("periodic checkpoint");
            assert!(ckpt.rounds() > 0);
            assert!(ckpt.n_committed_ops() <= full.accepted);
            let mut org_res = crate::init::random_org(&ctx, 42);
            let res = resume(&ctx, &mut org_res, &walk, &ckpt).expect("resume");
            assert_eq!(res.iterations, full.iterations);
            assert_eq!(res.accepted, full.accepted);
            assert_eq!(res.iter_stats, full.iter_stats);
            assert_eq!(
                res.final_effectiveness.to_bits(),
                full.final_effectiveness.to_bits()
            );
            assert_eq!(org_fingerprint(&org_res), org_fingerprint(&org_full));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_refuses_wrong_config_and_wrong_initial_org() {
        let ctx = ctx();
        let dir = tmp_dir("refuse");
        let path = dir.join("search.ckpt");
        let cfg = SearchConfig {
            max_iters: 60,
            deadline: Some(Duration::ZERO),
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                every_rounds: 0,
            }),
            ..plain_cfg()
        };
        let mut org = crate::init::random_org(&ctx, 9);
        let stats = optimize(&ctx, &mut org, &cfg);
        assert_eq!(stats.stop, StopReason::Deadline);
        let ckpt = Checkpoint::load(&path).expect("checkpoint");
        // Different seed → different config fingerprint.
        let bad_cfg = SearchConfig {
            seed: 1,
            ..plain_cfg()
        };
        let mut org2 = crate::init::random_org(&ctx, 9);
        assert!(matches!(
            resume(&ctx, &mut org2, &bad_cfg, &ckpt),
            Err(dln_fault::DlnError::InvalidConfig(_))
        ));
        // Different initial organization → different init fingerprint.
        let good_cfg = SearchConfig {
            max_iters: 60,
            ..plain_cfg()
        };
        let mut org3 = crate::init::random_org(&ctx, 10);
        assert!(matches!(
            resume(&ctx, &mut org3, &good_cfg, &ckpt),
            Err(dln_fault::DlnError::InvalidConfig(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
