//! High-level construction API.
//!
//! [`OrganizerBuilder`] wires together context extraction, initialization,
//! and local search, producing a [`BuiltOrganization`] ready for
//! evaluation, navigation, and success-curve reporting.

use dln_lake::{DataLake, TagId};

use crate::approx::Representatives;
use crate::ctx::OrgContext;
use crate::eval::{self, Evaluator, NavConfig};
use crate::graph::Organization;
use crate::init;
use crate::navigate::Navigator;
use crate::search::{self, SearchConfig, SearchStats};
use crate::success::{self, SuccessCurve};

/// Number of worker threads for the embarrassingly parallel evaluation
/// loops (exact discovery probabilities, similarity sets). Delegates to the
/// rayon shim so the `DLN_THREADS` / `RAYON_NUM_THREADS` environment knobs
/// (and `rayon::set_num_threads`) govern every parallel loop in the system.
pub(crate) fn default_threads() -> usize {
    rayon::current_num_threads()
}

/// Fluent builder for organizations over a data lake (or one tag group of
/// it).
pub struct OrganizerBuilder<'a> {
    lake: &'a DataLake,
    group: Option<Vec<TagId>>,
    cfg: SearchConfig,
}

impl<'a> OrganizerBuilder<'a> {
    /// A builder over every tag of `lake` with default parameters.
    pub fn new(lake: &'a DataLake) -> OrganizerBuilder<'a> {
        OrganizerBuilder {
            lake,
            group: None,
            cfg: SearchConfig::default(),
        }
    }

    /// Restrict to a tag group (one dimension of a multi-dimensional
    /// organization, §2.5).
    pub fn tag_group(mut self, tags: Vec<TagId>) -> Self {
        self.group = Some(tags);
        self
    }

    /// Set the γ of the transition model (Eq 1).
    pub fn gamma(mut self, gamma: f32) -> Self {
        self.cfg.nav.gamma = gamma;
        self
    }

    /// Set the RNG seed of the local search.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Set the representative fraction (§3.4; 1.0 = exact, paper uses 0.1).
    pub fn rep_fraction(mut self, fraction: f64) -> Self {
        self.cfg.rep_fraction = fraction;
        self
    }

    /// Set the plateau length that terminates the search (paper: 50).
    pub fn plateau_iters(mut self, iters: usize) -> Self {
        self.cfg.plateau_iters = iters;
        self
    }

    /// Set the hard cap on search proposals.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.cfg.max_iters = iters;
        self
    }

    /// Replace the whole search configuration.
    pub fn search_config(mut self, cfg: SearchConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The current search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.cfg
    }

    fn make_ctx(&self) -> OrgContext {
        match &self.group {
            Some(g) => OrgContext::for_tag_group(self.lake, g),
            None => OrgContext::full(self.lake),
        }
    }

    /// The flat (tag-portal) baseline organization (§3.2).
    pub fn build_flat(&self) -> BuiltOrganization {
        let ctx = self.make_ctx();
        let organization = init::flat_org(&ctx);
        BuiltOrganization {
            ctx,
            organization,
            nav: self.cfg.nav,
            search_stats: None,
        }
    }

    /// The agglomerative-clustering organization (§4.3.1's `clustering`),
    /// without local search.
    pub fn build_clustering(&self) -> BuiltOrganization {
        let ctx = self.make_ctx();
        let organization = init::clustering_org(&ctx);
        BuiltOrganization {
            ctx,
            organization,
            nav: self.cfg.nav,
            search_stats: None,
        }
    }

    /// Sharded construction ([`crate::shard`], DESIGN.md §5e): the group's
    /// tags are split into [`SearchConfig::shards`] embedding clusters —
    /// a fixed count, or the knee of the tag-similarity cost spectrum
    /// under `ShardPolicy::Auto` (`DLN_SHARDS=auto`) — each shard is
    /// optimized in parallel, and the shard roots are stitched under a
    /// router state. With `Fixed(1)` (the default unless `DLN_SHARDS`
    /// says otherwise) this is
    /// [`build_optimized`](Self::build_optimized), bit for bit.
    pub fn build_sharded(&self) -> crate::shard::ShardedBuild {
        match &self.group {
            Some(g) => crate::shard::build_sharded_group(self.lake, g, &self.cfg),
            None => crate::shard::build_sharded(self.lake, &self.cfg),
        }
    }

    /// The full pipeline: clustering initialization followed by Metropolis
    /// local search (§3.3).
    pub fn build_optimized(&self) -> BuiltOrganization {
        let ctx = self.make_ctx();
        let mut organization = init::clustering_org(&ctx);
        let stats = search::optimize(&ctx, &mut organization, &self.cfg);
        BuiltOrganization {
            ctx,
            organization,
            nav: self.cfg.nav,
            search_stats: Some(stats),
        }
    }
}

/// An organization bundled with its context and construction record.
pub struct BuiltOrganization {
    /// The universe the organization was built over.
    pub ctx: OrgContext,
    /// The organization DAG.
    pub organization: Organization,
    /// Navigation-model parameters used during construction.
    pub nav: NavConfig,
    /// Local-search statistics (`None` for flat / clustering builds).
    pub search_stats: Option<SearchStats>,
}

impl BuiltOrganization {
    /// Exact organization effectiveness (Eq 6) over the context's tables.
    pub fn effectiveness(&self) -> f64 {
        let reps = Representatives::exact(&self.ctx);
        Evaluator::new(&self.ctx, &self.organization, self.nav, &reps).effectiveness()
    }

    /// Exact discovery probability of every *lake* attribute (Def. 1);
    /// attributes outside this organization's context get 0.0.
    pub fn attr_discovery_global(&self, lake: &DataLake) -> Vec<f64> {
        let local =
            eval::discovery_probs(&self.ctx, &self.organization, self.nav, default_threads());
        let mut out = vec![0.0f64; lake.n_attrs()];
        for (i, a) in self.ctx.attrs().iter().enumerate() {
            out[a.global.index()] = local[i];
        }
        out
    }

    /// The Figure 2 success curve of this organization over `lake`.
    pub fn success_curve(&self, lake: &DataLake, theta: f32) -> SuccessCurve {
        let disc = self.attr_discovery_global(lake);
        success::success_curve(lake, &disc, theta, default_threads())
    }

    /// An interactive navigator positioned at the root.
    pub fn navigator(&self) -> Navigator<'_> {
        Navigator::new(&self.ctx, &self.organization, self.nav)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_synth::TagCloudConfig;

    #[test]
    fn builder_pipeline_end_to_end() {
        let bench = TagCloudConfig::small().generate();
        let builder = OrganizerBuilder::new(&bench.lake)
            .gamma(20.0)
            .seed(11)
            .max_iters(200);
        let flat = builder.build_flat();
        let clus = builder.build_clustering();
        let opt = builder.build_optimized();
        opt.organization.validate(&opt.ctx).expect("valid");
        let (ef, ec, eo) = (
            flat.effectiveness(),
            clus.effectiveness(),
            opt.effectiveness(),
        );
        assert!(ec > ef, "clustering {ec} must beat flat {ef}");
        assert!(
            eo >= ec,
            "optimized {eo} must never end below clustering {ec}"
        );
        assert!(opt.search_stats.is_some());
    }

    #[test]
    fn attr_discovery_global_covers_all_lake_attrs() {
        let bench = TagCloudConfig::small().generate();
        let built = OrganizerBuilder::new(&bench.lake).build_clustering();
        let disc = built.attr_discovery_global(&bench.lake);
        assert_eq!(disc.len(), bench.lake.n_attrs());
        assert!(disc.iter().all(|d| (0.0..=1.0).contains(d)));
        assert!(disc.iter().any(|&d| d > 0.0));
    }

    #[test]
    fn tag_group_restricts_context() {
        let bench = TagCloudConfig::small().generate();
        let group: Vec<_> = bench.lake.tag_ids().take(6).collect();
        let built = OrganizerBuilder::new(&bench.lake)
            .tag_group(group)
            .build_clustering();
        assert_eq!(built.ctx.n_tags(), 6);
        let disc = built.attr_discovery_global(&bench.lake);
        // Out-of-group attributes are undiscoverable in this dimension.
        let zeros = disc.iter().filter(|&&d| d == 0.0).count();
        assert!(zeros > 0);
    }

    #[test]
    fn success_curve_from_built_org() {
        let bench = TagCloudConfig::small().generate();
        let built = OrganizerBuilder::new(&bench.lake).build_clustering();
        let curve = built.success_curve(&bench.lake, 0.9);
        assert_eq!(curve.per_table.len(), bench.lake.n_tables());
        assert!(curve.mean > 0.0);
    }
}
