//! Initial organizations.
//!
//! * [`flat_org`] — the baseline: a single root over all tag states. This
//!   is "conceptually the navigation structure supported by many open data
//!   APIs that permit retrieval of tables by tag" (§3.2) and the `baseline`
//!   series of Figure 2(a).
//! * [`clustering_org`] — an agglomerative hierarchical clustering of the
//!   tag states with branching factor 2 (§4.3.1), which is both the
//!   `clustering` series of Figure 2(a) and the initial organization handed
//!   to the local-search optimizer ("the initial organization can be the
//!   DAG defined based on a hierarchical clustering of the tags", §3.3).

use dln_cluster::{CosinePoints, Dendrogram};

use crate::bitset::BitSet;
use crate::ctx::OrgContext;
use crate::graph::{Organization, StateId};

/// A *random* binary hierarchy over the tag states: structurally identical
/// to [`clustering_org`] but with merges chosen uniformly at random, i.e.
/// no topical coherence at all.
///
/// This is the ablation initializer: in our synthetic embedding space the
/// informed dendrogram is already near a local optimum of the navigation
/// model (see `EXPERIMENTS.md`), so the random hierarchy is how we
/// demonstrate that the §3.3 local search genuinely repairs bad structure
/// — the situation a real lake's noisy fastText vectors put the
/// initializer in.
pub fn random_org(ctx: &OrgContext, seed: u64) -> Organization {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut org = Organization::with_tag_states(ctx);
    let n = ctx.n_tags();
    if n == 0 {
        return org;
    }
    if n == 1 {
        org.add_edge(org.root(), org.tag_state(0));
        return org;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Active forest roots: (state, tag set).
    let mut active: Vec<(StateId, BitSet)> = (0..n as u32)
        .map(|t| (org.tag_state(t), BitSet::from_iter_with_capacity(n, [t])))
        .collect();
    while active.len() > 2 {
        let i = rng.random_range(0..active.len());
        let (sa, ta) = active.swap_remove(i);
        let j = rng.random_range(0..active.len());
        let (sb, tb) = active.swap_remove(j);
        let mut tags = ta;
        tags.union_with(&tb);
        let parent = org.add_state(ctx, tags.clone(), None);
        org.add_edge(parent, sa);
        org.add_edge(parent, sb);
        active.push((parent, tags));
    }
    for (s, _) in active {
        org.add_edge(org.root(), s);
    }
    org
}

/// The flat (tag-portal) baseline: root → every tag state.
pub fn flat_org(ctx: &OrgContext) -> Organization {
    let mut org = Organization::with_tag_states(ctx);
    for t in 0..ctx.n_tags() as u32 {
        org.add_edge(org.root(), org.tag_state(t));
    }
    org
}

/// A binary hierarchy over tag states from average-linkage agglomerative
/// clustering of the tags' topic vectors (cosine distance). The dendrogram
/// root coincides with the organization root.
pub fn clustering_org(ctx: &OrgContext) -> Organization {
    let mut org = Organization::with_tag_states(ctx);
    let n = ctx.n_tags();
    if n == 0 {
        return org;
    }
    if n == 1 {
        org.add_edge(org.root(), org.tag_state(0));
        return org;
    }
    let points = CosinePoints::new(ctx.tags().iter().map(|t| t.unit_topic.as_slice()).collect());
    let dend = Dendrogram::average_linkage(&points);
    // Map dendrogram node → organization state. Leaves are tag states; the
    // final merge is the organization root; other merges become interior
    // states with the union tag set.
    let n_nodes = dend.n_nodes();
    let mut state_of: Vec<StateId> = vec![StateId(u32::MAX); n_nodes];
    for t in 0..n as u32 {
        state_of[t as usize] = org.tag_state(t);
    }
    // Tag membership per dendrogram node, built bottom-up.
    let mut tags_of: Vec<Option<BitSet>> = vec![None; n_nodes];
    for (t, slot) in tags_of.iter_mut().enumerate().take(n) {
        *slot = Some(BitSet::from_iter_with_capacity(n, [t as u32]));
    }
    for (i, m) in dend.merges().iter().enumerate() {
        let node = n + i;
        // Merges are emitted bottom-up, so both children's tag sets exist.
        let mut tags = tags_of[m.a as usize]
            .clone()
            .unwrap_or_else(|| unreachable!("child tags computed before parent"));
        match tags_of[m.b as usize].as_ref() {
            Some(b) => {
                tags.union_with(b);
            }
            None => unreachable!("child tags computed before parent"),
        }
        let sid = if i + 1 == dend.merges().len() {
            org.root()
        } else {
            org.add_state(ctx, tags.clone(), None)
        };
        state_of[node] = sid;
        org.add_edge(sid, state_of[m.a as usize]);
        org.add_edge(sid, state_of[m.b as usize]);
        tags_of[node] = Some(tags);
    }
    org
}

/// A *divisive* hierarchy: recursively bisect the tag set with 2-medoids
/// until groups are singletons. Produces balanced trees of depth
/// ≈ log₂(n) even when tags are highly correlated — average-linkage
/// agglomerative clustering famously *chains* on correlated data and can
/// produce near-linear hierarchies, which are terrible to navigate. This
/// initializer is the ablation alternative (`--init bisecting` in the
/// ablation bench).
pub fn bisecting_org(ctx: &OrgContext, seed: u64) -> Organization {
    let mut org = Organization::with_tag_states(ctx);
    let n = ctx.n_tags();
    if n == 0 {
        return org;
    }
    if n == 1 {
        org.add_edge(org.root(), org.tag_state(0));
        return org;
    }
    // Recursive bisection; each call owns a tag group and a parent state.
    fn split(
        org: &mut Organization,
        ctx: &OrgContext,
        parent: StateId,
        group: &[u32],
        seed: u64,
        depth: u64,
    ) {
        debug_assert!(group.len() >= 2);
        let points = dln_cluster::CosinePoints::new(
            group
                .iter()
                .map(|&t| ctx.tag(t).unit_topic.as_slice())
                .collect(),
        );
        let km = dln_cluster::KMedoids::fit(&points, 2, seed ^ depth.wrapping_mul(0x9E37));
        let mut halves: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        for (i, &c) in km.assignments.iter().enumerate() {
            halves[c.min(1)].push(group[i]);
        }
        // Degenerate split (all points identical): force a balanced cut.
        if halves[0].is_empty() || halves[1].is_empty() {
            let mid = group.len() / 2;
            halves[0] = group[..mid].to_vec();
            halves[1] = group[mid..].to_vec();
        }
        for half in halves {
            if half.len() == 1 {
                org.add_edge(parent, org.tag_state(half[0]));
            } else {
                let tags = BitSet::from_iter_with_capacity(ctx.n_tags(), half.iter().copied());
                let child = org.add_state(ctx, tags, None);
                org.add_edge(parent, child);
                split(org, ctx, child, &half, seed, depth + 1);
            }
        }
    }
    let all: Vec<u32> = (0..n as u32).collect();
    let root = org.root();
    split(&mut org, ctx, root, &all, seed, 1);
    org
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_synth::TagCloudConfig;

    fn ctx() -> OrgContext {
        let bench = TagCloudConfig::small().generate();
        OrgContext::full(&bench.lake)
    }

    #[test]
    fn flat_is_valid_and_shallow() {
        let ctx = ctx();
        let org = flat_org(&ctx);
        org.validate(&ctx).expect("valid");
        let levels = org.levels();
        for t in 0..ctx.n_tags() as u32 {
            assert_eq!(levels[org.tag_state(t).index()], 1);
        }
        let root = org.state(org.root());
        assert_eq!(root.children.len(), ctx.n_tags());
    }

    #[test]
    fn clustering_is_valid_binary_tree() {
        let ctx = ctx();
        let org = clustering_org(&ctx);
        org.validate(&ctx).expect("valid");
        // Every interior state has exactly two children (binary dendrogram).
        for sid in org.alive_ids() {
            let s = org.state(sid);
            if s.tag.is_none() {
                assert_eq!(s.children.len(), 2, "state {sid:?} not binary");
            }
        }
        // 2n - 1 states total for n tags.
        assert_eq!(org.n_alive(), 2 * ctx.n_tags() - 1);
    }

    #[test]
    fn clustering_depth_is_logarithmic_ish() {
        let ctx = ctx();
        let org = clustering_org(&ctx);
        let levels = org.levels();
        let max = levels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap();
        let n = ctx.n_tags();
        assert!(
            (max as usize) < n,
            "depth {max} must beat the flat degenerate chain"
        );
        assert!(max >= (n as f64).log2().floor() as u32);
    }

    #[test]
    fn clustering_groups_similar_tags() {
        // Tags of the same vocabulary topic should share a low parent more
        // often than random ones; sanity check via sibling similarity.
        let ctx = ctx();
        let org = clustering_org(&ctx);
        // For each interior parent of two tag states, their cosine should
        // be above the average pairwise cosine.
        let mut paired = Vec::new();
        for sid in org.alive_ids() {
            let s = org.state(sid);
            if s.children.len() == 2 {
                let (a, b) = (org.state(s.children[0]), org.state(s.children[1]));
                if let (Some(ta), Some(tb)) = (a.tag, b.tag) {
                    paired.push(dln_embed::dot(
                        &ctx.tag(ta).unit_topic,
                        &ctx.tag(tb).unit_topic,
                    ));
                }
            }
        }
        assert!(!paired.is_empty());
        let avg_paired: f32 = paired.iter().sum::<f32>() / paired.len() as f32;
        // Average over all pairs.
        let n = ctx.n_tags();
        let mut all = 0.0f32;
        let mut cnt = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                all += dln_embed::dot(&ctx.tag(i as u32).unit_topic, &ctx.tag(j as u32).unit_topic);
                cnt += 1;
            }
        }
        let avg_all = all / cnt as f32;
        assert!(
            avg_paired > avg_all,
            "dendrogram siblings ({avg_paired}) should beat random pairs ({avg_all})"
        );
    }

    #[test]
    fn single_tag_group() {
        let bench = TagCloudConfig::small().generate();
        let first = bench.lake.tag_ids().next().unwrap();
        let ctx = OrgContext::for_tag_group(&bench.lake, &[first]);
        let org = clustering_org(&ctx);
        org.validate(&ctx).expect("valid");
        assert_eq!(org.n_alive(), 2);
        let flat = flat_org(&ctx);
        flat.validate(&ctx).expect("valid");
    }

    #[test]
    fn bisecting_is_valid_and_balanced() {
        let ctx = ctx();
        let org = bisecting_org(&ctx, 7);
        org.validate(&ctx).expect("valid");
        let levels = org.levels();
        let max = levels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap();
        let n = ctx.n_tags() as f64;
        assert!(
            (max as f64) <= 3.0 * n.log2().ceil(),
            "bisecting depth {max} should be near log2({n})"
        );
    }

    #[test]
    fn bisecting_handles_tiny_groups() {
        let bench = TagCloudConfig::small().generate();
        for k in 1..4usize {
            let tags: Vec<_> = bench.lake.tag_ids().take(k).collect();
            let ctx = OrgContext::for_tag_group(&bench.lake, &tags);
            let org = bisecting_org(&ctx, 3);
            org.validate(&ctx).expect("valid");
        }
    }

    #[test]
    fn random_org_is_valid_but_uninformed() {
        let ctx = ctx();
        let org = random_org(&ctx, 3);
        org.validate(&ctx).expect("valid");
        assert_eq!(org.n_alive(), 2 * ctx.n_tags() - 1);
        // Deterministic in its seed, different across seeds.
        let a = random_org(&ctx, 5);
        let b = random_org(&ctx, 5);
        let c = random_org(&ctx, 6);
        let fp = |o: &Organization| -> Vec<Vec<u32>> {
            o.alive_ids()
                .map(|s| o.state(s).children.iter().map(|c| c.0).collect())
                .collect()
        };
        assert_eq!(fp(&a), fp(&b));
        assert_ne!(fp(&a), fp(&c));
    }

    #[test]
    fn two_tag_group() {
        let bench = TagCloudConfig::small().generate();
        let tags: Vec<_> = bench.lake.tag_ids().take(2).collect();
        let ctx = OrgContext::for_tag_group(&bench.lake, &tags);
        let org = clustering_org(&ctx);
        org.validate(&ctx).expect("valid");
        // root + 2 tag states; the single merge is the root itself.
        assert_eq!(org.n_alive(), 3);
        assert_eq!(org.state(org.root()).children.len(), 2);
    }
}
