//! Organization persistence and visualization.
//!
//! * [`to_dot`] renders an organization as GraphViz DOT, with tag states as
//!   boxes and interior states labelled by their most popular tags — handy
//!   for eyeballing what the local search did to a hierarchy.
//! * [`save_json`] / [`load_json`] persist an organization (structure +
//!   tag sets; attribute sets and topic vectors are re-derived from the
//!   context on load, so files stay small and can never go stale against
//!   the lake). The format is a stable, hand-readable JSON document.
//!
//! JSON is emitted and parsed with a small local serializer to keep the
//! dependency surface minimal (serde is used elsewhere for derives only;
//! organizations need a custom round-trip through the context anyway).

use std::fmt::Write as _;

use crate::bitset::BitSet;
use crate::ctx::OrgContext;
use crate::graph::{Organization, StateId};

/// Render the alive part of an organization as GraphViz DOT.
pub fn to_dot(ctx: &OrgContext, org: &Organization, max_label_tags: usize) -> String {
    let mut out = String::from("digraph organization {\n  rankdir=TB;\n  node [fontsize=10];\n");
    for sid in org.alive_ids() {
        let s = org.state(sid);
        let label = org.label(ctx, sid, max_label_tags).replace('"', "'");
        let shape = if s.tag.is_some() {
            "box"
        } else if sid == org.root() {
            "doubleoctagon"
        } else {
            "ellipse"
        };
        let _ = writeln!(
            out,
            "  s{} [label=\"{}\\n{} tags / {} attrs\", shape={}];",
            sid.0,
            label,
            s.tags.len(),
            s.attrs.len(),
            shape
        );
    }
    for sid in org.alive_ids() {
        for &c in &org.state(sid).children {
            let _ = writeln!(out, "  s{} -> s{};", sid.0, c.0);
        }
    }
    out.push_str("}\n");
    out
}

/// Serialize an organization to the JSON document format.
///
/// Only alive interior structure is stored: for every alive state, its tag
/// list (by tag *label*, so files survive lake re-ingestion as long as the
/// tags exist) and its children by index. Tag states are identified by
/// their single tag.
pub fn save_json(ctx: &OrgContext, org: &Organization) -> String {
    // Dense re-indexing of alive states.
    let alive: Vec<StateId> = org.alive_ids().collect();
    let index_of = |sid: StateId| {
        alive
            .iter()
            .position(|&x| x == sid)
            .unwrap_or_else(|| unreachable!("children of alive states are alive"))
    };
    let mut out = String::from("{\n  \"format\": \"dln-organization-v1\",\n  \"states\": [\n");
    for (i, &sid) in alive.iter().enumerate() {
        let s = org.state(sid);
        let tags: Vec<String> = s
            .tags
            .iter()
            .map(|t| json_escape(&ctx.tag(t).label))
            .collect();
        let children: Vec<String> = s
            .children
            .iter()
            .map(|&c| index_of(c).to_string())
            .collect();
        let _ = write!(
            out,
            "    {{\"root\": {}, \"tag_state\": {}, \"tags\": [{}], \"children\": [{}]}}",
            sid == org.root(),
            s.tag.is_some(),
            tags.iter()
                .map(|t| format!("\"{t}\""))
                .collect::<Vec<_>>()
                .join(", "),
            children.join(", ")
        );
        out.push_str(if i + 1 < alive.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            '\r' => "\\r".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Errors from [`load_json`].
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The document is not the expected format.
    BadFormat(String),
    /// A tag label in the file does not exist in the context.
    UnknownTag(String),
    /// The document's structure is inconsistent (bad child index, no root,
    /// a tag state with the wrong arity, …).
    Inconsistent(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadFormat(m) => write!(f, "bad format: {m}"),
            LoadError::UnknownTag(t) => write!(f, "unknown tag: {t}"),
            LoadError::Inconsistent(m) => write!(f, "inconsistent organization: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Deserialize an organization saved by [`save_json`], re-deriving
/// attribute sets and topic vectors from `ctx` and validating the result.
pub fn load_json(ctx: &OrgContext, json: &str) -> Result<Organization, LoadError> {
    let parsed = parse_states(json)?;
    // Build: tag states first (identified), then interiors.
    let mut org = Organization::with_tag_states(ctx);
    let n = parsed.len();
    let mut sid_of: Vec<Option<StateId>> = vec![None; n];
    let mut root_idx: Option<usize> = None;
    for (i, st) in parsed.iter().enumerate() {
        if st.root {
            if root_idx.is_some() {
                return Err(LoadError::Inconsistent("multiple roots".into()));
            }
            root_idx = Some(i);
        }
        let mut tagset = BitSet::new(ctx.n_tags());
        for label in &st.tags {
            let Some(local) = ctx
                .tags()
                .iter()
                .position(|t| &t.label == label)
                .map(|p| p as u32)
            else {
                return Err(LoadError::UnknownTag(label.clone()));
            };
            tagset.insert(local);
        }
        if st.tag_state {
            if tagset.len() != 1 {
                return Err(LoadError::Inconsistent(format!(
                    "tag state {i} has {} tags",
                    tagset.len()
                )));
            }
            let Some(t) = tagset.iter().next() else {
                unreachable!("arity 1 checked just above")
            };
            sid_of[i] = Some(org.tag_state(t));
        } else if st.root {
            sid_of[i] = Some(org.root());
        } else {
            sid_of[i] = Some(org.add_state(ctx, tagset, None));
        }
    }
    let Some(_root) = root_idx else {
        return Err(LoadError::Inconsistent("no root state".into()));
    };
    for (i, st) in parsed.iter().enumerate() {
        let parent =
            sid_of[i].unwrap_or_else(|| unreachable!("every state got an id in the first pass"));
        for &c in &st.children {
            let Some(child) = sid_of.get(c).copied().flatten() else {
                return Err(LoadError::Inconsistent(format!("bad child index {c}")));
            };
            org.add_edge(parent, child);
        }
    }
    org.validate(ctx).map_err(LoadError::Inconsistent)?;
    Ok(org)
}

struct ParsedState {
    root: bool,
    tag_state: bool,
    tags: Vec<String>,
    children: Vec<usize>,
}

/// A minimal parser for exactly the document shape [`save_json`] writes.
fn parse_states(json: &str) -> Result<Vec<ParsedState>, LoadError> {
    if !json.contains("\"dln-organization-v1\"") {
        return Err(LoadError::BadFormat(
            "missing dln-organization-v1 marker".into(),
        ));
    }
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"tags\"") {
            continue;
        }
        let root = field(line, "\"root\":").is_some_and(|v| v.starts_with("true"));
        let tag_state = field(line, "\"tag_state\":").is_some_and(|v| v.starts_with("true"));
        let tags = string_array(line, "\"tags\":")
            .ok_or_else(|| LoadError::BadFormat(format!("no tags array in: {line}")))?;
        let children_raw = array_body(line, "\"children\":")
            .ok_or_else(|| LoadError::BadFormat(format!("no children array in: {line}")))?;
        let mut children = Vec::new();
        for part in children_raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            children.push(
                part.parse::<usize>()
                    .map_err(|_| LoadError::BadFormat(format!("bad child index {part}")))?,
            );
        }
        out.push(ParsedState {
            root,
            tag_state,
            tags,
            children,
        });
    }
    if out.is_empty() {
        return Err(LoadError::BadFormat("no states found".into()));
    }
    Ok(out)
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let at = line.find(key)? + key.len();
    Some(line[at..].trim_start())
}

fn array_body<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = field(line, key)?;
    let open = rest.find('[')?;
    let close = rest[open..].find(']')? + open;
    Some(&rest[open + 1..close])
}

fn string_array(line: &str, key: &str) -> Option<Vec<String>> {
    let body = array_body(line, key)?;
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escape = false;
    for ch in body.chars() {
        if escape {
            cur.push(match ch {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                c => c,
            });
            escape = false;
            continue;
        }
        match ch {
            '\\' if in_str => escape = true,
            '"' => {
                if in_str {
                    out.push(std::mem::take(&mut cur));
                }
                in_str = !in_str;
            }
            c if in_str => cur.push(c),
            _ => {}
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{clustering_org, flat_org};
    use dln_synth::TagCloudConfig;

    fn setup() -> (OrgContext, Organization) {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        (ctx, org)
    }

    #[test]
    fn dot_contains_all_alive_states_and_edges() {
        let (ctx, org) = setup();
        let dot = to_dot(&ctx, &org, 2);
        assert!(dot.starts_with("digraph organization {"));
        assert_eq!(
            dot.matches("shape=box").count(),
            ctx.n_tags(),
            "one box per tag state"
        );
        assert_eq!(dot.matches(" -> ").count(), org.n_edges());
        assert!(dot.contains("doubleoctagon"), "root is marked");
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let (ctx, org) = setup();
        let json = save_json(&ctx, &org);
        let loaded = load_json(&ctx, &json).expect("load");
        loaded.validate(&ctx).expect("valid");
        assert_eq!(loaded.n_alive(), org.n_alive());
        assert_eq!(loaded.n_edges(), org.n_edges());
        // Same evaluator result — structure is semantically identical.
        let reps = crate::approx::Representatives::exact(&ctx);
        let e1 = crate::eval::Evaluator::new(&ctx, &org, crate::eval::NavConfig::default(), &reps)
            .effectiveness();
        let e2 =
            crate::eval::Evaluator::new(&ctx, &loaded, crate::eval::NavConfig::default(), &reps)
                .effectiveness();
        assert!((e1 - e2).abs() < 1e-12, "{e1} vs {e2}");
    }

    #[test]
    fn json_roundtrip_after_optimization() {
        let (ctx, mut org) = setup();
        let cfg = crate::search::SearchConfig {
            max_iters: 100,
            ..Default::default()
        };
        crate::search::optimize(&ctx, &mut org, &cfg);
        let json = save_json(&ctx, &org);
        let loaded = load_json(&ctx, &json).expect("load optimized");
        assert_eq!(loaded.n_alive(), org.n_alive());
        assert_eq!(loaded.n_edges(), org.n_edges());
    }

    #[test]
    fn flat_org_roundtrip() {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = flat_org(&ctx);
        let loaded = load_json(&ctx, &save_json(&ctx, &org)).expect("load");
        assert_eq!(loaded.n_edges(), ctx.n_tags());
    }

    #[test]
    fn load_rejects_garbage() {
        let (ctx, _) = setup();
        assert!(matches!(
            load_json(&ctx, "{}"),
            Err(LoadError::BadFormat(_))
        ));
        assert!(matches!(
            load_json(&ctx, "not json at all"),
            Err(LoadError::BadFormat(_))
        ));
    }

    #[test]
    fn load_rejects_unknown_tags() {
        let (ctx, org) = setup();
        let json = save_json(&ctx, &org).replace(
            &format!("\"{}\"", ctx.tag(0).label),
            "\"no-such-tag-label\"",
        );
        assert!(matches!(
            load_json(&ctx, &json),
            Err(LoadError::UnknownTag(_))
        ));
    }

    #[test]
    fn load_rejects_bad_child_index() {
        let (ctx, org) = setup();
        let json = save_json(&ctx, &org);
        // Corrupt a child index to something out of range.
        let corrupted = json.replace("\"children\": [", "\"children\": [99999, ");
        let r = load_json(&ctx, &corrupted);
        assert!(matches!(r, Err(LoadError::Inconsistent(_))), "got {r:?}");
    }

    #[test]
    fn escaped_labels_roundtrip() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let arr = string_array(r#"{"tags": ["a\"b", "c d"]}"#, "\"tags\":").unwrap();
        assert_eq!(arr, vec!["a\"b".to_string(), "c d".to_string()]);
    }
}
