//! Behaviour logs and incremental transition-model updates.
//!
//! §2.4 of the paper: "Since our model uses a standard Markov model, we can
//! apply existing incremental model estimation techniques to maintain and
//! update the transition probabilities as behavior logs and workload
//! patterns become available through the use of an organization by users."
//!
//! This module implements that loop:
//!
//! * [`NavigationLog`] accumulates user walks (from the real navigator or
//!   the simulated study agents) as per-state visit counts and per-edge
//!   choice counts;
//! * [`NavigationLog::blended_transitions`] produces a posterior transition
//!   distribution for a state — a Dirichlet-smoothed blend of the content
//!   model (Eq 1, the prior) and the observed click-through counts — which
//!   the navigator can expose as "popular next steps";
//! * [`NavigationLog::empirical_reachability`] gives per-state visit
//!   frequencies, usable in place of (or mixed with) Eq 10's model
//!   reachability to steer the local search toward states real users
//!   fail to reach.

use std::collections::HashMap;
use std::path::Path;

use dln_fault::{DlnError, DlnResult};

use crate::graph::{Organization, StateId};
use crate::persist;

/// Magic prefix of a serialized [`NavigationLog`].
const LOG_MAGIC: &[u8; 8] = b"DLNAVLOG";
/// Current on-disk format version of a serialized [`NavigationLog`].
const LOG_VERSION: u8 = 1;

/// Accumulated navigation behaviour over an organization.
#[derive(Clone, Debug, Default)]
pub struct NavigationLog {
    /// Visits per state slot.
    visits: HashMap<u32, u64>,
    /// Chosen transitions: `(parent, child) → count`.
    choices: HashMap<(u32, u32), u64>,
    /// Number of recorded walks.
    sessions: u64,
}

impl NavigationLog {
    /// An empty log.
    pub fn new() -> NavigationLog {
        NavigationLog::default()
    }

    /// Record one walk (the `path()` of a navigator session, or any
    /// root-to-wherever state sequence). Consecutive pairs are counted as
    /// chosen transitions; every state on the path is counted as visited.
    pub fn record_walk(&mut self, path: &[StateId]) {
        if path.is_empty() {
            return;
        }
        self.sessions += 1;
        for s in path {
            *self.visits.entry(s.0).or_insert(0) += 1;
        }
        for w in path.windows(2) {
            *self.choices.entry((w[0].0, w[1].0)).or_insert(0) += 1;
        }
    }

    /// Merge another log into this one (e.g. per-user logs into a global
    /// one — the incremental-estimation setting).
    pub fn merge(&mut self, other: &NavigationLog) {
        for (k, v) in &other.visits {
            *self.visits.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.choices {
            *self.choices.entry(*k).or_insert(0) += v;
        }
        self.sessions += other.sessions;
    }

    /// Subtract a previously [`merge`](Self::merge)d (or cloned) log from
    /// this one — the acknowledgement half of an ack-after-durable drain:
    /// the optimizer clones the live log, persists the clone, and only then
    /// subtracts exactly what it persisted, so walks merged in between the
    /// two steps survive untouched. Counts saturate at zero and exhausted
    /// entries are removed, so draining everything leaves an empty log.
    pub fn subtract(&mut self, drained: &NavigationLog) {
        for (k, v) in &drained.visits {
            if let Some(e) = self.visits.get_mut(k) {
                *e = e.saturating_sub(*v);
                if *e == 0 {
                    self.visits.remove(k);
                }
            }
        }
        for (k, v) in &drained.choices {
            if let Some(e) = self.choices.get_mut(k) {
                *e = e.saturating_sub(*v);
                if *e == 0 {
                    self.choices.remove(k);
                }
            }
        }
        self.sessions = self.sessions.saturating_sub(drained.sessions);
    }

    /// Number of recorded walks.
    pub fn n_sessions(&self) -> u64 {
        self.sessions
    }

    /// Visits of a state.
    pub fn visits(&self, s: StateId) -> u64 {
        self.visits.get(&s.0).copied().unwrap_or(0)
    }

    /// Times the transition `parent → child` was chosen.
    pub fn choices(&self, parent: StateId, child: StateId) -> u64 {
        self.choices.get(&(parent.0, child.0)).copied().unwrap_or(0)
    }

    /// Per-slot empirical reachability: the fraction of sessions that
    /// visited each state. Zero-length output for an empty log.
    pub fn empirical_reachability(&self, org: &Organization) -> Vec<f64> {
        let mut out = vec![0.0f64; org.n_slots()];
        if self.sessions == 0 {
            return out;
        }
        for (slot, count) in &self.visits {
            if let Some(o) = out.get_mut(*slot as usize) {
                *o = *count as f64 / self.sessions as f64;
            }
        }
        out
    }

    /// Posterior transition distribution from `parent`, blending a model
    /// prior (Eq 1 probabilities, parallel to `parent`'s children) with the
    /// observed choice counts under a Dirichlet prior of strength
    /// `prior_strength` (pseudo-counts):
    ///
    /// ```text
    /// P̂(c | s) = (count(s → c) + strength · P_model(c | s))
    ///            / (Σ_c count(s → c) + strength)
    /// ```
    ///
    /// With no observations this returns the prior; with many observations
    /// it converges to the empirical click-through distribution — the
    /// standard incremental Markov-model update the paper points at.
    pub fn blended_transitions(
        &self,
        org: &Organization,
        parent: StateId,
        model_prior: &[f64],
        prior_strength: f64,
    ) -> Vec<f64> {
        let children = &org.state(parent).children;
        assert_eq!(
            children.len(),
            model_prior.len(),
            "one prior probability per child"
        );
        assert!(prior_strength > 0.0, "prior strength must be positive");
        let counts: Vec<f64> = children
            .iter()
            .map(|&c| self.choices(parent, c) as f64)
            .collect();
        let total: f64 = counts.iter().sum::<f64>() + prior_strength;
        counts
            .iter()
            .zip(model_prior)
            .map(|(n, p)| (n + prior_strength * p) / total)
            .collect()
    }

    /// Reachability for local-search targeting: a convex mix of the model
    /// reachability (Eq 10) and the empirical visit frequencies —
    /// `(1 − w) · model + w · empirical`. With `w = 0` this is the pure
    /// paper algorithm; as logs accumulate, raising `w` steers the
    /// optimizer toward the states *actual users* fail to reach.
    pub fn mixed_reachability(
        &self,
        org: &Organization,
        model: &[f64],
        empirical_weight: f64,
    ) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&empirical_weight));
        let emp = self.empirical_reachability(org);
        model
            .iter()
            .zip(emp.iter().chain(std::iter::repeat(&0.0)))
            .map(|(m, e)| (1.0 - empirical_weight) * m + empirical_weight * e)
            .collect()
    }

    /// Serialize to a versioned, FNV-1a-sealed byte record. Map entries are
    /// written in sorted key order, so identical logs produce identical
    /// bytes regardless of `HashMap` iteration order — a requirement for
    /// the evidence log's exactly-once accounting and for fingerprint
    /// comparisons across restarts.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = persist::Writer::with_capacity(
            8 + 1 + 8 + 8 + self.visits.len() * 12 + 8 + self.choices.len() * 16 + 8,
        );
        w.bytes(LOG_MAGIC);
        w.u8(LOG_VERSION);
        w.u64(self.sessions);
        let mut visits: Vec<(u32, u64)> = self.visits.iter().map(|(k, v)| (*k, *v)).collect();
        visits.sort_unstable();
        w.u64(visits.len() as u64);
        for (slot, count) in visits {
            w.u32(slot);
            w.u64(count);
        }
        let mut choices: Vec<((u32, u32), u64)> =
            self.choices.iter().map(|(k, v)| (*k, *v)).collect();
        choices.sort_unstable();
        w.u64(choices.len() as u64);
        for ((parent, child), count) in choices {
            w.u32(parent);
            w.u32(child);
            w.u64(count);
        }
        w.seal()
    }

    /// Decode a record produced by [`encode`](Self::encode), verifying the
    /// trailing checksum, magic, and version. `context` names the source
    /// (e.g. a path) in error messages.
    pub fn decode(bytes: &[u8], context: &str) -> DlnResult<NavigationLog> {
        let payload = persist::verify_sealed(bytes, context)?;
        let mut r = persist::Reader::new(payload, 0, context);
        let magic = r.take(8)?;
        if magic != LOG_MAGIC {
            return Err(DlnError::corrupt(context, "not a navigation log"));
        }
        let version = r.u8()?;
        if version != LOG_VERSION {
            return Err(DlnError::corrupt(
                context,
                format!("unsupported navigation-log version {version}"),
            ));
        }
        let sessions = r.u64()?;
        let n_visits = r.u64()? as usize;
        if n_visits > payload.len() {
            return Err(DlnError::corrupt(
                context,
                format!("implausible visit count {n_visits}"),
            ));
        }
        let mut visits = HashMap::with_capacity(n_visits);
        for _ in 0..n_visits {
            let slot = r.u32()?;
            let count = r.u64()?;
            visits.insert(slot, count);
        }
        let n_choices = r.u64()? as usize;
        if n_choices > payload.len() {
            return Err(DlnError::corrupt(
                context,
                format!("implausible choice count {n_choices}"),
            ));
        }
        let mut choices = HashMap::with_capacity(n_choices);
        for _ in 0..n_choices {
            let parent = r.u32()?;
            let child = r.u32()?;
            let count = r.u64()?;
            choices.insert((parent, child), count);
        }
        if r.pos() != payload.len() {
            return Err(DlnError::corrupt(
                context,
                format!("{} trailing bytes", payload.len() - r.pos()),
            ));
        }
        Ok(NavigationLog {
            visits,
            choices,
            sessions,
        })
    }

    /// Atomically persist the log at `path` (tmp + fsync + rename, rotating
    /// the previous generation to `<path>.prev`).
    pub fn save(&self, path: &Path) -> DlnResult<()> {
        persist::atomic_write(path, &self.encode())
    }

    /// Load a log saved by [`save`](Self::save), without fallback.
    pub fn load(path: &Path) -> DlnResult<NavigationLog> {
        let bytes = std::fs::read(path).map_err(|e| DlnError::io(path.display().to_string(), e))?;
        NavigationLog::decode(&bytes, &path.display().to_string())
    }

    /// Load a log saved by [`save`](Self::save), falling back to the
    /// rotated `<path>.prev` generation when the newest file is torn.
    pub fn load_with_fallback(path: &Path) -> DlnResult<NavigationLog> {
        persist::load_with_fallback(path, "navigation log", NavigationLog::load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::OrgContext;
    use crate::init::clustering_org;
    use dln_synth::TagCloudConfig;

    fn setup() -> (OrgContext, Organization) {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        (ctx, org)
    }

    #[test]
    fn record_and_count() {
        let (_ctx, org) = setup();
        let mut log = NavigationLog::new();
        let root = org.root();
        let c0 = org.state(root).children[0];
        let c1 = org.state(root).children[1];
        log.record_walk(&[root, c0]);
        log.record_walk(&[root, c0]);
        log.record_walk(&[root, c1]);
        assert_eq!(log.n_sessions(), 3);
        assert_eq!(log.visits(root), 3);
        assert_eq!(log.choices(root, c0), 2);
        assert_eq!(log.choices(root, c1), 1);
        assert_eq!(log.choices(c0, root), 0, "direction matters");
    }

    #[test]
    fn empty_walk_is_ignored() {
        let mut log = NavigationLog::new();
        log.record_walk(&[]);
        assert_eq!(log.n_sessions(), 0);
    }

    #[test]
    fn empirical_reachability_is_session_fraction() {
        let (_ctx, org) = setup();
        let mut log = NavigationLog::new();
        let root = org.root();
        let c0 = org.state(root).children[0];
        log.record_walk(&[root, c0]);
        log.record_walk(&[root]);
        let r = log.empirical_reachability(&org);
        assert!((r[root.index()] - 1.0).abs() < 1e-12);
        assert!((r[c0.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn blended_transitions_interpolate_prior_and_counts() {
        let (_ctx, org) = setup();
        let mut log = NavigationLog::new();
        let root = org.root();
        let children = org.state(root).children.clone();
        assert_eq!(children.len(), 2);
        let prior = vec![0.5, 0.5];
        // No data → the prior.
        let p0 = log.blended_transitions(&org, root, &prior, 10.0);
        assert!((p0[0] - 0.5).abs() < 1e-12);
        // Heavy clicks on child 0 → converges toward the clicks.
        for _ in 0..90 {
            log.record_walk(&[root, children[0]]);
        }
        for _ in 0..10 {
            log.record_walk(&[root, children[1]]);
        }
        let p = log.blended_transitions(&org, root, &prior, 10.0);
        assert!((p[0] + p[1] - 1.0).abs() < 1e-12, "distribution sums to 1");
        assert!(p[0] > 0.8, "click-through dominates: {}", p[0]);
        assert!(p[0] < 0.9, "prior still smooths: {}", p[0]);
    }

    #[test]
    fn mixed_reachability_bounds() {
        let (_ctx, org) = setup();
        let mut log = NavigationLog::new();
        log.record_walk(&[org.root()]);
        let model = vec![0.2; org.n_slots()];
        let pure_model = log.mixed_reachability(&org, &model, 0.0);
        assert!(pure_model.iter().all(|&v| (v - 0.2).abs() < 1e-12));
        let pure_emp = log.mixed_reachability(&org, &model, 1.0);
        assert!((pure_emp[org.root().index()] - 1.0).abs() < 1e-12);
        assert!(pure_emp
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != org.root().index())
            .all(|(_, &v)| v == 0.0));
    }

    #[test]
    fn merge_accumulates() {
        let (_ctx, org) = setup();
        let root = org.root();
        let c0 = org.state(root).children[0];
        let mut a = NavigationLog::new();
        a.record_walk(&[root, c0]);
        let mut b = NavigationLog::new();
        b.record_walk(&[root, c0]);
        b.record_walk(&[root]);
        a.merge(&b);
        assert_eq!(a.n_sessions(), 3);
        assert_eq!(a.choices(root, c0), 2);
        assert_eq!(a.visits(root), 3);
    }

    #[test]
    fn concurrent_interleaved_merges_are_order_invariant() {
        // The serving layer merges per-session logs into one service log in
        // whatever order sessions happen to close/evict across threads.
        // Reorganization quality then depends on this: whatever the
        // interleaving, the merged counts — and everything derived from
        // them, like empirical reachability — must equal the fixed-order
        // serial merge.
        use std::sync::Mutex;

        let (_ctx, org) = setup();
        let root = org.root();
        let children = org.state(root).children.clone();

        // 16 distinct per-session logs (different walks and multiplicities).
        let session_logs: Vec<NavigationLog> = (0..16u64)
            .map(|i| {
                let mut l = NavigationLog::new();
                let c = children[(i as usize) % children.len()];
                for _ in 0..=(i % 5) {
                    l.record_walk(&[root, c]);
                }
                if i % 3 == 0 {
                    l.record_walk(&[root]);
                }
                l
            })
            .collect();

        // Reference: serial merge in index order.
        let mut reference = NavigationLog::new();
        for l in &session_logs {
            reference.merge(l);
        }
        let ref_reach = reference.empirical_reachability(&org);

        // Concurrent: four threads race to merge four logs each, so the
        // arrival order at the shared log is scheduler-chosen.
        for round in 0..8 {
            let shared = Mutex::new(NavigationLog::new());
            std::thread::scope(|scope| {
                for chunk in session_logs.chunks(4) {
                    let shared = &shared;
                    scope.spawn(move || {
                        for l in chunk {
                            // Tiny stagger to vary interleavings per round.
                            if round % 2 == 1 {
                                std::thread::yield_now();
                            }
                            shared.lock().unwrap().merge(l);
                        }
                    });
                }
            });
            let merged = shared.into_inner().unwrap();
            assert_eq!(merged.n_sessions(), reference.n_sessions());
            assert_eq!(merged.visits(root), reference.visits(root));
            for &c in &children {
                assert_eq!(merged.visits(c), reference.visits(c));
                assert_eq!(merged.choices(root, c), reference.choices(root, c));
            }
            let reach = merged.empirical_reachability(&org);
            assert_eq!(
                reach, ref_reach,
                "round {round}: reachability must not depend on merge order"
            );
        }
    }

    #[test]
    fn navigator_paths_feed_the_log() {
        // Integration with the navigator: greedy sessions produce walks the
        // log can consume, and popular tags become visibly reachable.
        let (ctx, org) = setup();
        let mut log = NavigationLog::new();
        let nav_cfg = crate::eval::NavConfig::default();
        for t in 0..6u32 {
            let query = ctx.tag(t).unit_topic.clone();
            let mut nav = crate::navigate::Navigator::new(&ctx, &org, nav_cfg);
            for _ in 0..32 {
                let probs = nav.transition_probs(&query);
                let Some((best, _)) = probs
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .copied()
                else {
                    break;
                };
                nav.descend(best).unwrap();
            }
            log.record_walk(nav.path());
        }
        assert_eq!(log.n_sessions(), 6);
        let r = log.empirical_reachability(&org);
        assert!((r[org.root().index()] - 1.0).abs() < 1e-12);
        assert!(r.iter().filter(|&&v| v > 0.0).count() > 6);
    }

    fn sample_log() -> NavigationLog {
        let mut log = NavigationLog::new();
        log.record_walk(&[StateId(9), StateId(2), StateId(5)]);
        log.record_walk(&[StateId(9), StateId(2)]);
        log.record_walk(&[StateId(9), StateId(7), StateId(1), StateId(0)]);
        log
    }

    fn logs_equal(a: &NavigationLog, b: &NavigationLog) -> bool {
        a.sessions == b.sessions && a.visits == b.visits && a.choices == b.choices
    }

    #[test]
    fn encode_decode_roundtrip_and_determinism() {
        let log = sample_log();
        let bytes = log.encode();
        let back = NavigationLog::decode(&bytes, "test").expect("decode");
        assert!(logs_equal(&log, &back));
        // Deterministic bytes: re-encoding (and encoding a rebuilt clone
        // whose HashMaps have a different insertion history) is identical.
        assert_eq!(bytes, back.encode());
        let mut rebuilt = NavigationLog::new();
        rebuilt.merge(&back);
        assert_eq!(bytes, rebuilt.encode());
        // Empty log round-trips too.
        let empty = NavigationLog::new();
        let back = NavigationLog::decode(&empty.encode(), "test").expect("decode empty");
        assert!(logs_equal(&empty, &back));
    }

    #[test]
    fn every_flipped_byte_is_rejected() {
        let bytes = sample_log().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            let err = NavigationLog::decode(&bad, "test").unwrap_err();
            assert!(
                matches!(err, dln_fault::DlnError::Corrupt { .. }),
                "flip at byte {i}: {err}"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample_log().encode();
        for n in 0..bytes.len() {
            let err = NavigationLog::decode(&bytes[..n], "test").unwrap_err();
            assert!(
                matches!(err, dln_fault::DlnError::Corrupt { .. }),
                "truncation to {n} bytes: {err}"
            );
        }
    }

    #[test]
    fn save_load_and_prev_fallback() {
        let dir = std::env::temp_dir().join(format!("dln_navlog_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nav.log");
        let log = sample_log();
        log.save(&path).expect("save");
        let back = NavigationLog::load_with_fallback(&path).expect("load");
        assert!(logs_equal(&log, &back));
        // Second generation rotates the first to .prev; tearing the newest
        // file falls back to the previous generation.
        let mut newer = log.clone();
        newer.record_walk(&[StateId(9), StateId(3)]);
        newer.save(&path).expect("save gen 2");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() * 2 / 3]).unwrap();
        let back = NavigationLog::load_with_fallback(&path).expect("fallback");
        assert!(logs_equal(&log, &back), "fell back to generation 1");
        // Both generations torn → Corrupt.
        std::fs::write(crate::persist::prev_path(&path), b"junk").unwrap();
        let err = NavigationLog::load_with_fallback(&path).unwrap_err();
        assert!(matches!(err, dln_fault::DlnError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn subtract_is_exact_drain_ack() {
        let root = StateId(9);
        let c0 = StateId(2);
        let mut live = sample_log();
        // The optimizer clones the live log and persists it...
        let drained = live.clone();
        // ...while a new walk lands in between.
        live.record_walk(&[root, c0]);
        // The ack removes exactly what was drained; the interim walk stays.
        live.subtract(&drained);
        assert_eq!(live.n_sessions(), 1);
        assert_eq!(live.visits(root), 1);
        assert_eq!(live.choices(root, c0), 1);
        assert_eq!(live.visits(StateId(7)), 0, "drained entries are removed");
        // Draining everything leaves a log indistinguishable from empty.
        let rest = live.clone();
        live.subtract(&rest);
        assert!(logs_equal(&live, &NavigationLog::new()));
        assert!(live.visits.is_empty() && live.choices.is_empty());
    }
}
