//! Multi-dimensional organizations (§2.5).
//!
//! "Given the heterogeneity and massive size of data lakes, it may be
//! advantageous to perform an initial grouping of tables and then build an
//! organization on each group." Tags are partitioned into `k` groups with
//! k-medoids over their topic vectors (§4.3.1/§4.3.4), one organization is
//! optimized per group — independently and in parallel, which is why the
//! paper's multi-dimensional constructions are *faster* than the
//! 1-dimensional one — and discovery composes across dimensions:
//!
//! ```text
//! P(T | M) = 1 − Π over dimensions i of (1 − P(T | Oᵢ))      (Eq 8)
//! ```

use dln_cluster::{partition_indices, CosinePoints};
use dln_lake::{DataLake, TagId};

use crate::builder::{default_threads, BuiltOrganization, OrganizerBuilder};
use crate::search::SearchConfig;
use crate::success::{self, SuccessCurve};

/// Configuration for building a k-dimensional organization.
#[derive(Clone, Debug)]
pub struct MultiDimConfig {
    /// Number of dimensions (tag groups). The paper uses 1–4 on TagCloud
    /// and 10 on Socrata.
    pub n_dims: usize,
    /// Local-search configuration applied to every dimension.
    pub search: SearchConfig,
    /// Seed of the k-medoids tag partitioning.
    pub partition_seed: u64,
    /// Optimize dimensions on parallel threads (the paper's reported
    /// multi-dimensional construction times assume this).
    pub parallel: bool,
}

impl Default for MultiDimConfig {
    fn default() -> Self {
        MultiDimConfig {
            n_dims: 2,
            search: SearchConfig::default(),
            partition_seed: 0x9A97_0E55,
            parallel: true,
        }
    }
}

/// Per-dimension statistics — the rows of the paper's Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimStats {
    /// Tags in the dimension.
    pub n_tags: usize,
    /// Attributes reachable in the dimension.
    pub n_attrs: usize,
    /// Tables with at least one attribute in the dimension.
    pub n_tables: usize,
    /// Evaluation representatives used while optimizing the dimension.
    pub n_reps: usize,
}

/// A k-dimensional organization: one optimized organization per tag group.
pub struct MultiDimOrganization {
    /// The per-dimension organizations, ordered by descending tag count
    /// (the presentation order of Table 1).
    pub dims: Vec<BuiltOrganization>,
}

impl MultiDimOrganization {
    /// Partition the lake's tags into `cfg.n_dims` groups by k-medoids over
    /// tag topic vectors and optimize one organization per group.
    pub fn build(lake: &DataLake, cfg: &MultiDimConfig) -> MultiDimOrganization {
        let groups = partition_tags(lake, cfg.n_dims, cfg.partition_seed);
        Self::build_from_groups(lake, groups, cfg)
    }

    /// Build from an explicit tag partition (used by tests and ablations).
    pub fn build_from_groups(
        lake: &DataLake,
        groups: Vec<Vec<TagId>>,
        cfg: &MultiDimConfig,
    ) -> MultiDimOrganization {
        let groups: Vec<Vec<TagId>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
        let mut dims: Vec<Option<BuiltOrganization>> = Vec::new();
        dims.resize_with(groups.len(), || None);
        if cfg.parallel {
            std::thread::scope(|scope| {
                for (slot, group) in dims.iter_mut().zip(groups.iter()) {
                    let search = cfg.search.clone();
                    scope.spawn(move || {
                        *slot = Some(
                            OrganizerBuilder::new(lake)
                                .tag_group(group.clone())
                                .search_config(search)
                                .build_optimized(),
                        );
                    });
                }
            });
        } else {
            for (slot, group) in dims.iter_mut().zip(groups.iter()) {
                *slot = Some(
                    OrganizerBuilder::new(lake)
                        .tag_group(group.clone())
                        .search_config(cfg.search.clone())
                        .build_optimized(),
                );
            }
        }
        let mut dims: Vec<BuiltOrganization> = dims
            .into_iter()
            .map(|d| d.unwrap_or_else(|| unreachable!("every dimension slot is filled above")))
            .collect();
        dims.sort_by_key(|d| std::cmp::Reverse(d.ctx.n_tags()));
        MultiDimOrganization { dims }
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// Discovery probability of every lake attribute in the
    /// multi-dimensional organization: `P(A|M) = 1 − Π(1 − P(A|Oᵢ))`.
    pub fn attr_discovery_global(&self, lake: &DataLake) -> Vec<f64> {
        let mut miss = vec![1.0f64; lake.n_attrs()];
        for dim in &self.dims {
            let disc = dim.attr_discovery_global(lake);
            for (m, d) in miss.iter_mut().zip(disc.iter()) {
                *m *= 1.0 - d;
            }
        }
        miss.into_iter().map(|m| 1.0 - m).collect()
    }

    /// Discovery probability of every lake table (Eq 8).
    pub fn table_discovery(&self, lake: &DataLake) -> Vec<f64> {
        let attr_disc = self.attr_discovery_global(lake);
        lake.table_ids()
            .map(|t| {
                let miss: f64 = lake
                    .table(t)
                    .attrs
                    .iter()
                    .map(|a| 1.0 - attr_disc[a.index()])
                    .product();
                1.0 - miss
            })
            .collect()
    }

    /// Organization effectiveness of the multi-dimensional organization:
    /// the mean table discovery probability over the lake (Eq 6 + Eq 8).
    pub fn effectiveness(&self, lake: &DataLake) -> f64 {
        let probs = self.table_discovery(lake);
        if probs.is_empty() {
            return 0.0;
        }
        probs.iter().sum::<f64>() / probs.len() as f64
    }

    /// The Figure 2 success curve of the multi-dimensional organization.
    pub fn success_curve(&self, lake: &DataLake, theta: f32) -> SuccessCurve {
        let disc = self.attr_discovery_global(lake);
        success::success_curve(lake, &disc, theta, default_threads())
    }

    /// Table 1: per-dimension statistics, in the stored (descending tag
    /// count) order.
    pub fn dim_stats(&self) -> Vec<DimStats> {
        self.dims
            .iter()
            .map(|d| DimStats {
                n_tags: d.ctx.n_tags(),
                n_attrs: d.ctx.n_attrs(),
                n_tables: d.ctx.n_tables(),
                n_reps: d
                    .search_stats
                    .as_ref()
                    .map(|s| s.n_queries)
                    .unwrap_or_else(|| d.ctx.n_attrs()),
            })
            .collect()
    }

    /// Wall-clock construction time: the maximum over dimensions when built
    /// in parallel (matches the paper's §4.3.2 reporting convention: "the
    /// reported construction times of the multi-dimensional organizations
    /// indicate the time it takes to finish optimizing all dimensions").
    pub fn parallel_construction_time(&self) -> std::time::Duration {
        self.dims
            .iter()
            .filter_map(|d| d.search_stats.as_ref().map(|s| s.duration))
            .max()
            .unwrap_or_default()
    }
}

/// Partition the lake's tags into `k` groups by k-medoids over their unit
/// topic vectors (cosine distance). Returns at most `k` non-empty groups.
pub fn partition_tags(lake: &DataLake, k: usize, seed: u64) -> Vec<Vec<TagId>> {
    let points = CosinePoints::new(
        lake.tags()
            .iter()
            .map(|t| t.unit_topic.as_slice())
            .collect(),
    );
    partition_indices(&points, k, seed)
        .into_iter()
        .map(|g| g.into_iter().map(|t| TagId(t as u32)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_synth::TagCloudConfig;

    fn cfg(n_dims: usize) -> MultiDimConfig {
        MultiDimConfig {
            n_dims,
            search: SearchConfig {
                max_iters: 120,
                ..Default::default()
            },
            partition_seed: 5,
            parallel: true,
        }
    }

    #[test]
    fn partition_covers_all_tags() {
        let bench = TagCloudConfig::small().generate();
        let groups = partition_tags(&bench.lake, 3, 1);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, bench.lake.n_tags());
        assert!(groups.len() <= 3 && !groups.is_empty());
    }

    #[test]
    fn two_dim_builds_and_composes() {
        let bench = TagCloudConfig::small().generate();
        let m = MultiDimOrganization::build(&bench.lake, &cfg(2));
        assert!(m.n_dims() >= 1 && m.n_dims() <= 2);
        for d in &m.dims {
            d.organization.validate(&d.ctx).expect("valid dim");
        }
        let eff = m.effectiveness(&bench.lake);
        assert!(eff > 0.0 && eff <= 1.0);
        // Eq 8 composition dominates each single attribute discovery.
        let composed = m.attr_discovery_global(&bench.lake);
        for dim in &m.dims {
            let single = dim.attr_discovery_global(&bench.lake);
            for (c, s) in composed.iter().zip(single.iter()) {
                assert!(*c >= *s - 1e-12);
            }
        }
    }

    #[test]
    fn more_dimensions_do_not_hurt_effectiveness() {
        // The Figure 2(a) trend: 2-dim ≥ 1-dim (each dimension is smaller
        // and more coherent).
        let bench = TagCloudConfig::small().generate();
        let one = MultiDimOrganization::build(&bench.lake, &cfg(1));
        let two = MultiDimOrganization::build(&bench.lake, &cfg(2));
        let e1 = one.effectiveness(&bench.lake);
        let e2 = two.effectiveness(&bench.lake);
        assert!(
            e2 > e1 * 0.9,
            "2-dim ({e2}) should be at least comparable to 1-dim ({e1})"
        );
    }

    #[test]
    fn dim_stats_order_and_totals() {
        let bench = TagCloudConfig::small().generate();
        let m = MultiDimOrganization::build(&bench.lake, &cfg(3));
        let stats = m.dim_stats();
        // Descending tag counts (Table 1 presentation).
        for w in stats.windows(2) {
            assert!(w[0].n_tags >= w[1].n_tags);
        }
        // Tags partition exactly; attributes may repeat across dims only if
        // multi-tagged (TagCloud attrs have one tag → exact partition too).
        let total_tags: usize = stats.iter().map(|s| s.n_tags).sum();
        assert_eq!(total_tags, bench.lake.n_tags());
        let total_attrs: usize = stats.iter().map(|s| s.n_attrs).sum();
        assert_eq!(total_attrs, bench.lake.n_attrs());
    }

    #[test]
    fn sequential_matches_parallel_dims() {
        let bench = TagCloudConfig::small().generate();
        let mut c = cfg(2);
        let par = MultiDimOrganization::build(&bench.lake, &c);
        c.parallel = false;
        let seq = MultiDimOrganization::build(&bench.lake, &c);
        let ep = par.effectiveness(&bench.lake);
        let es = seq.effectiveness(&bench.lake);
        assert!(
            (ep - es).abs() < 1e-12,
            "parallelism must not change results: {ep} vs {es}"
        );
    }

    #[test]
    fn single_dim_equals_full_builder() {
        let bench = TagCloudConfig::small().generate();
        let m = MultiDimOrganization::build(&bench.lake, &cfg(1));
        assert_eq!(m.n_dims(), 1);
        assert_eq!(m.dims[0].ctx.n_tags(), bench.lake.n_tags());
    }
}
