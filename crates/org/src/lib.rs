//! Data lake organizations — the core contribution of
//! *"Organizing Data Lakes for Navigation"* (SIGMOD 2020).
//!
//! An **organization** (§2.1) is a DAG whose nodes ("states") are sets of
//! attributes from a data lake, with edges pointing from supersets to
//! subsets (the *inclusion property*). Users discover tables by walking the
//! DAG from the root; the walk is modelled as a Markov process whose
//! transition probabilities follow the similarity between a state's topic
//! vector and the user's (latent) query topic (§2.3, Equation 1).
//!
//! In data lakes with tag metadata, the state space is built over *tags*
//! (§3.2): the graph's leaves are single-tag states, every interior state
//! is a set of tags, and the attributes of a state are the union of its
//! tags' attribute populations. An attribute is discovered by reaching one
//! of its tag states and then selecting it among the tag's attributes
//! (§4.3.4).
//!
//! Module map:
//!
//! * [`bitset`] — fixed-capacity bitsets for tag / attribute sets.
//! * [`ctx`] — [`OrgContext`]: the per-organization universe (a tag group
//!   and its attributes / tables), with local dense ids.
//! * [`graph`] — the [`Organization`] DAG: states, edges, levels,
//!   structural validation.
//! * [`init`] — initial organizations: the flat (tag-portal) baseline and
//!   the agglomerative-clustering initialization (§3.3).
//! * [`ops`] — the two local-search operations `ADD_PARENT` /
//!   `DELETE_PARENT` with undo logs (§3.3).
//! * [`eval`] — the navigation model: reach probabilities (Eq 2–4),
//!   discovery probabilities (Def. 1–2), organization effectiveness (Eq 6),
//!   with incremental affected-subgraph re-evaluation (§3.4).
//! * [`approx`] — attribute representatives for approximate evaluation
//!   (§3.4).
//! * [`search`] — the Metropolis local-search loop (§3.3, Eq 9), with
//!   deadline-aware, checkpointed execution and bit-identical resume.
//! * [`persist`] — shared persistence plumbing: FNV-1a checksum framing,
//!   atomic publish (`<path>.tmp` + fsync + rename) with `.prev`
//!   rotation, and generation-fallback loading.
//! * [`checkpoint`] — versioned, checksummed search checkpoints (the
//!   crash-safety layer; see DESIGN.md §5c).
//! * [`store`] — the persistent zero-copy organization store: a complete
//!   serving snapshot in one mmap-friendly file of aligned fixed-width
//!   sections, opened by reference in milliseconds (DESIGN.md §5g).
//! * [`view`] — the [`OrgView`] accessor trait served snapshots are read
//!   through, implemented by both the in-memory structs and the mapped
//!   store.
//! * [`multidim`] — k-dimensional organizations (§2.5, Eq 8) with parallel
//!   per-dimension optimization.
//! * [`shard`] — sharded single-dimension construction: tags split into
//!   embedding clusters, per-shard parallel search, shard roots stitched
//!   under a top-level router state (DESIGN.md §5e).
//! * [`reopt`] — the crash-safe feedback-driven re-optimization loop:
//!   durable evidence log, epoch-committed cycles, shard-scoped
//!   checkpointed search, and graft-back shard republish (DESIGN.md §5h).
//! * [`maintain`] — crash-safe incremental maintenance under ingest
//!   churn: durable CDC change log → delta apply → localized re-search →
//!   cross-shard rebalance, published shard-scoped (DESIGN.md §5i).
//! * [`success`] — the success-probability evaluation measure (§4.2).
//! * [`navigate`] — interactive navigation over a built organization
//!   (state labelling and query-conditioned transitions, §4.4 prototype).
//! * [`builder`] — [`OrganizerBuilder`], the high-level API.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod approx;
pub mod bitset;
pub mod builder;
pub mod checkpoint;
pub mod ctx;
pub mod eval;
pub mod export;
pub mod feedback;
pub mod graph;
pub mod init;
pub mod maintain;
pub mod multidim;
pub mod navigate;
pub mod ops;
pub mod persist;
pub mod reopt;
pub mod search;
pub mod shard;
pub mod store;
pub mod success;
pub mod view;

pub use approx::Representatives;
pub use bitset::BitSet;
pub use builder::{BuiltOrganization, OrganizerBuilder};
pub use checkpoint::{Checkpoint, CheckpointConfig};
pub use ctx::{LocalAttr, LocalTag, OrgContext};
pub use eval::{Evaluator, NavConfig};
pub use export::{load_json, save_json, to_dot};
pub use feedback::NavigationLog;
pub use graph::{Organization, StateId};
pub use init::{bisecting_org, clustering_org, flat_org, random_org};
pub use maintain::{MaintAdvance, MaintConfig, MaintStage, Maintainer, EMPTY_SHARD};
pub use multidim::{MultiDimConfig, MultiDimOrganization};
pub use navigate::{
    transition_probs_from, transition_probs_from_mat, transition_probs_over, Navigator,
};
pub use ops::{OpKind, OpOutcome};
pub use reopt::{Advance, CyclePhase, CycleStage, EvidenceLog, ReoptConfig, Reoptimizer};
pub use search::{IterStats, SearchConfig, SearchStats, ShardPolicy, StopReason};
pub use shard::{
    build_sharded, build_sharded_group, derive_shard_seed, ShardedBuild, AUTO_SHARD_MAX,
};
pub use store::{open_store, open_store_with_fallback, save_store, MappedSnapshot};
pub use success::{success_curve, SuccessCurve};
pub use view::{OrgView, OwnedSnap};
