//! The navigation model and organization-effectiveness evaluation.
//!
//! Implements §2.2–§2.4 of the paper:
//!
//! * **Transition probability** (Eq 1): from state `s`, a user searching
//!   for topic `X` moves to child `c` with probability
//!   `softmax_c( (γ/|ch(s)|) · κ(c, X) )`, where `κ` is the cosine
//!   similarity of topic vectors and the `1/|ch(s)|` factor penalizes
//!   large branching factors.
//! * **Reach probability** (Eqs 2–4): propagated from the root through the
//!   DAG in topological order, summing over all discovery sequences.
//! * **Attribute discovery** (Def. 1, instantiated as §4.3.4): the
//!   probability of reaching one of the attribute's tag states times the
//!   probability of selecting the attribute among that tag's attributes.
//! * **Table discovery & effectiveness** (Def. 2, Eqs 5–6).
//!
//! The evaluator holds per-query reach rows so that a local-search
//! operation only re-evaluates its *affected subgraph* (§3.4): the
//! descendants of the states whose outgoing transition distribution
//! changed. Every delta application returns an undo token so a rejected
//! Metropolis proposal rolls the evaluator back exactly.
//!
//! Performance (see `DESIGN.md`, "Performance architecture"): the reach
//! matrix is one contiguous `n_queries × n_slots` allocation driven by
//! `rayon::par_chunks_mut` — queries are independent, so both the full
//! recompute and the incremental delta fan out across threads while
//! keeping every per-query reduction in fixed topological order
//! (bit-identical results for any thread count). Child topic vectors are
//! cached per state as contiguous `f32` matrices so Eq 1 is a streaming
//! mat-vec; the affected subgraph and the active parent list are computed
//! once per delta instead of once per query; and reachability (Eq 10) is
//! served from incrementally maintained column sums.

use dln_embed::{batch_dot_wide, dot};
use rayon::prelude::*;

use crate::approx::Representatives;
use crate::bitset::BitSet;
use crate::ctx::OrgContext;
use crate::graph::{Organization, StateId};

/// Navigation-model hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct NavConfig {
    /// The γ of Equation 1 (must be strictly positive). Larger values make
    /// users more decisive; the `1/|ch(s)|` branching penalty divides it.
    pub gamma: f32,
}

impl Default for NavConfig {
    fn default() -> Self {
        NavConfig { gamma: 20.0 }
    }
}

/// One evaluation query: a representative attribute standing for a
/// partition of attributes (§3.4). With exact evaluation every attribute is
/// its own representative.
#[derive(Clone, Debug)]
struct Query {
    /// Local id of the representative attribute.
    attr: u32,
    /// Final-hop terms: `(local tag, P(attr | tag state))` for each tag of
    /// the representative. The hop probabilities never change during search
    /// (tag populations are fixed), so they are precomputed.
    hops: Vec<(u32, f64)>,
}

/// Rollback token for [`Evaluator::apply_delta`].
///
/// Reach values are stored struct-of-arrays: one shared list of affected
/// slots plus a dense query-major value matrix, instead of one
/// `(query, slot, value)` triple per entry — a third of the memory traffic
/// and a single allocation per field.
#[derive(Debug, Default)]
pub struct EvalUndo {
    /// Affected slots (shared column index set for every query's row).
    slots: Vec<u32>,
    /// Saved reach values, query-major: `reach_values[q * slots.len() + k]`
    /// is the pre-delta value of query `q` at slot `slots[k]`.
    reach_values: Vec<f64>,
    /// Saved reachability column sums, parallel to `slots`.
    sum_values: Vec<f64>,
    /// Seed-format `(query, slot, value)` log, used only by the
    /// [`apply_delta_uncached`](Evaluator::apply_delta_uncached) baseline.
    reach_aos: Vec<(u32, u32, f64)>,
    /// Changed discovery probabilities (query index / previous value).
    disc_q: Vec<u32>,
    disc_v: Vec<f64>,
    /// Changed table probabilities (table index / previous value).
    tables_t: Vec<u32>,
    tables_v: Vec<f64>,
    /// States whose child-topic matrix cache must be re-marked stale on
    /// rollback: the operation's own undo will rewrite their children or
    /// child topics after the evaluator rolls back.
    dirty_states: Vec<u32>,
    old_sum: f64,
}

/// Re-evaluation cost counters for one delta (feeds Figure 3).
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaStats {
    /// States whose reach probabilities were recomputed.
    pub states_visited: usize,
    /// Discovery-probability evaluations performed (representatives).
    pub queries_evaluated: usize,
    /// Attributes covered by the re-evaluated representatives (exact mode:
    /// equals `queries_evaluated`).
    pub attrs_covered: usize,
}

/// Incremental evaluator of organization effectiveness (Eq 6).
pub struct Evaluator {
    nav: NavConfig,
    queries: Vec<Query>,
    /// Representative (query index) of each local attribute.
    rep_of_attr: Vec<u32>,
    /// Partition size of each query.
    query_weight: Vec<u32>,
    /// Embedding dimensionality.
    dim: usize,
    /// Slot count every flattened array is sized for.
    n_slots: usize,
    /// Row-major `n_queries × n_slots` reach matrix: `reach[q * n_slots +
    /// slot]` is the probability of reaching `slot` while searching for
    /// query `q`'s topic.
    reach: Vec<f64>,
    /// Per-slot column sums of `reach`, maintained incrementally so
    /// reachability (Eq 10) is O(n_slots) per proposal instead of
    /// O(n_queries × n_slots).
    reach_sum: Vec<f64>,
    /// `disc[q]`: discovery probability of query `q`'s own attribute.
    disc: Vec<f64>,
    /// Row-major `n_queries × dim` matrix of query unit topics.
    query_units: Vec<f32>,
    /// Tables (local ids) containing attributes represented by each query.
    tables_of_query: Vec<Vec<u32>>,
    /// Queries whose representative carries a given local tag.
    queries_of_tag: Vec<Vec<u32>>,
    /// `P(T | O)` per local table (Eq 5 with representative approximation).
    table_prob: Vec<f64>,
    sum_table_prob: f64,
    /// Optional per-table demand weights (empty = uniform). When set, the
    /// maintained sum aggregates `w_t · P(T_t | O)` and effectiveness is
    /// the demand-weighted mean — how the feedback loop steers the search
    /// toward the tables users actually look for.
    table_weight: Vec<f64>,
    /// Σ of `table_weight` (0.0 when unweighted).
    weight_total: f64,
    /// Per-state row-major `n_children × dim` matrix of child unit topics,
    /// so Eq 1 is one streaming mat-vec instead of a pointer-chase per
    /// child. Refreshed lazily for dirty states only.
    child_mats: Vec<Vec<f32>>,
    /// Slots whose child-topic matrix is stale w.r.t. the organization.
    child_dirty: Vec<bool>,
    // --- scratch, reused across apply_delta calls ---
    /// Per-slot "is affected" marker (doubles as the DFS `seen` set).
    affected_mark: Vec<bool>,
    /// Dedup set for seed collection (capacity `n_slots`).
    seed_set: BitSet,
    /// Dedup set for dirty queries (capacity `n_queries`).
    dirty_query_set: BitSet,
    /// Dedup set for dirty tables (capacity `n_tables`).
    dirty_table_set: BitSet,
    seeds_scratch: Vec<StateId>,
    stack_scratch: Vec<StateId>,
    affected_scratch: Vec<StateId>,
    active_scratch: Vec<StateId>,
    sum_scratch: Vec<f64>,
    dirty_query_scratch: Vec<u32>,
    dirty_table_scratch: Vec<u32>,
}

impl Evaluator {
    /// Build an evaluator and run a full evaluation.
    pub fn new(
        ctx: &OrgContext,
        org: &Organization,
        nav: NavConfig,
        reps: &Representatives,
    ) -> Evaluator {
        assert!(nav.gamma > 0.0, "gamma must be strictly positive (Eq 1)");
        let gamma = nav.gamma;
        let dim = ctx.dim();
        let mut queries = Vec::with_capacity(reps.reps.len());
        let mut query_units = Vec::with_capacity(reps.reps.len() * dim);
        for &attr in &reps.reps {
            let a = ctx.attr(attr);
            let mut hops = Vec::with_capacity(a.tags.len());
            for &t in &a.tags {
                hops.push((t, final_hop(ctx, gamma, t, attr)));
            }
            queries.push(Query { attr, hops });
            query_units.extend_from_slice(ctx.attr_unit(attr));
        }
        let mut query_weight = vec![0u32; queries.len()];
        for &q in &reps.rep_of_attr {
            query_weight[q as usize] += 1;
        }
        // Static maps.
        let mut tables_of_query: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        for (a, &q) in reps.rep_of_attr.iter().enumerate() {
            let t = ctx.attr(a as u32).table;
            if !tables_of_query[q as usize].contains(&t) {
                tables_of_query[q as usize].push(t);
            }
        }
        let mut queries_of_tag: Vec<Vec<u32>> = vec![Vec::new(); ctx.n_tags()];
        for (qi, q) in queries.iter().enumerate() {
            for &(t, _) in &q.hops {
                queries_of_tag[t as usize].push(qi as u32);
            }
        }
        let n_queries = queries.len();
        let mut ev = Evaluator {
            nav,
            queries,
            rep_of_attr: reps.rep_of_attr.clone(),
            query_weight,
            dim,
            n_slots: 0,
            reach: Vec::new(),
            reach_sum: Vec::new(),
            disc: Vec::new(),
            query_units,
            tables_of_query,
            queries_of_tag,
            table_prob: vec![0.0; ctx.n_tables()],
            sum_table_prob: 0.0,
            table_weight: Vec::new(),
            weight_total: 0.0,
            child_mats: Vec::new(),
            child_dirty: Vec::new(),
            affected_mark: Vec::new(),
            seed_set: BitSet::new(0),
            dirty_query_set: BitSet::new(n_queries),
            dirty_table_set: BitSet::new(ctx.n_tables()),
            seeds_scratch: Vec::new(),
            stack_scratch: Vec::new(),
            affected_scratch: Vec::new(),
            active_scratch: Vec::new(),
            sum_scratch: Vec::new(),
            dirty_query_scratch: Vec::new(),
            dirty_table_scratch: Vec::new(),
        };
        ev.recompute_full(ctx, org);
        ev
    }

    /// Organization effectiveness `P(T | O)` (Eq 6): the mean table
    /// discovery probability over the context's tables — demand-weighted
    /// when [`set_table_weights`](Self::set_table_weights) is in effect.
    pub fn effectiveness(&self) -> f64 {
        if self.table_prob.is_empty() {
            return 0.0;
        }
        if self.table_weight.is_empty() {
            self.sum_table_prob / self.table_prob.len() as f64
        } else {
            self.sum_table_prob / self.weight_total
        }
    }

    /// The weight of table `t` in the maintained effectiveness sum (1.0
    /// when unweighted — multiplying by it is bit-exact, so the unweighted
    /// path stays bit-identical to an evaluator without this seam).
    #[inline]
    fn tw(&self, t: usize) -> f64 {
        if self.table_weight.is_empty() {
            1.0
        } else {
            self.table_weight[t]
        }
    }

    /// Install per-table demand weights (one per local table, finite,
    /// non-negative, positive total) and re-aggregate the maintained
    /// effectiveness sum from the cached per-table probabilities. Passing
    /// an empty slice restores the uniform (paper Eq 6) objective.
    ///
    /// # Panics
    /// If the weight vector has the wrong length, contains a non-finite or
    /// negative entry, or sums to zero.
    pub fn set_table_weights(&mut self, weights: &[f64]) {
        if weights.is_empty() {
            self.table_weight = Vec::new();
            self.weight_total = 0.0;
        } else {
            assert_eq!(
                weights.len(),
                self.table_prob.len(),
                "one weight per local table"
            );
            assert!(
                weights.iter().all(|w| w.is_finite() && *w >= 0.0),
                "weights must be finite and non-negative"
            );
            let total: f64 = weights.iter().sum();
            assert!(total > 0.0, "weights must have positive total");
            self.table_weight = weights.to_vec();
            self.weight_total = total;
        }
        self.sum_table_prob = self
            .table_prob
            .iter()
            .enumerate()
            .map(|(t, p)| self.tw(t) * p)
            .sum();
    }

    /// Discovery probability of a local attribute (via its representative).
    pub fn attr_discovery(&self, attr: u32) -> f64 {
        self.disc[self.rep_of_attr[attr as usize] as usize]
    }

    /// Discovery probability of a local table (Eq 5).
    pub fn table_discovery(&self, table: u32) -> f64 {
        self.table_prob[table as usize]
    }

    /// Mean reach probability of every state slot over all queries —
    /// the reachability of Equation 10, used to pick operation targets.
    pub fn reachability(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.reachability_into(&mut out);
        out
    }

    /// Allocation-free form of [`reachability`](Self::reachability) for hot
    /// callers: served from the maintained column sums in O(n_slots).
    pub fn reachability_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.reach_sum);
        if !self.queries.is_empty() {
            let inv = 1.0 / self.queries.len() as f64;
            out.iter_mut().for_each(|v| *v *= inv);
        }
    }

    /// Number of evaluation queries (representatives).
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// One query's reach row (probability of reaching each state slot while
    /// searching for that query's topic). Exposed for tests / diagnostics.
    pub fn reach_row(&self, q: usize) -> &[f64] {
        &self.reach[q * self.n_slots..(q + 1) * self.n_slots]
    }

    /// Full (from scratch) evaluation of the current organization.
    /// Queries are independent, so their reach rows are recomputed in
    /// parallel; each row's DP runs in fixed topological order, so results
    /// are bit-identical for every thread count.
    pub fn recompute_full(&mut self, ctx: &OrgContext, org: &Organization) {
        let n_slots = org.n_slots();
        let nq = self.queries.len();
        self.n_slots = n_slots;
        self.affected_mark.clear();
        self.affected_mark.resize(n_slots, false);
        if self.seed_set.capacity() != n_slots {
            self.seed_set = BitSet::new(n_slots);
        }
        // Child-topic matrix cache: refresh every alive interior state now;
        // everything else is marked stale and refreshed lazily if it ever
        // gains affected children.
        self.child_mats.resize_with(n_slots, Vec::new);
        self.child_dirty.clear();
        self.child_dirty.resize(n_slots, true);
        for i in 0..n_slots {
            let sid = StateId(i as u32);
            let st = org.state(sid);
            if st.alive && !st.children.is_empty() {
                refresh_child_mat(&mut self.child_mats[i], org, sid, self.dim);
                self.child_dirty[i] = false;
            } else {
                self.child_mats[i].clear();
            }
        }
        self.reach.clear();
        self.reach.resize(nq * n_slots, 0.0);
        self.disc.clear();
        self.disc.resize(nq, 0.0);
        let order = org.topo_order();
        let root = org.root();
        let gamma = self.nav.gamma;
        let dim = self.dim;
        {
            let Evaluator {
                reach,
                disc,
                queries,
                query_units,
                child_mats,
                ..
            } = self;
            let queries: &[Query] = queries;
            let query_units: &[f32] = query_units;
            let child_mats: &[Vec<f32>] = child_mats;
            reach
                .par_chunks_mut(n_slots.max(1))
                .zip(disc.par_chunks_mut(1))
                .enumerate()
                .for_each_init(Vec::new, |weights, (qi, (row, d))| {
                    let unit = &query_units[qi * dim..(qi + 1) * dim];
                    row[root.index()] = 1.0;
                    for &s in order {
                        let st = org.state(s);
                        if st.children.is_empty() || row[s.index()] == 0.0 {
                            continue;
                        }
                        weights_from_mat(
                            &child_mats[s.index()],
                            st.children.len(),
                            gamma,
                            unit,
                            weights,
                        );
                        let r = row[s.index()];
                        for (&c, &w) in st.children.iter().zip(weights.iter()) {
                            row[c.index()] += r * w;
                        }
                    }
                    d[0] = queries[qi]
                        .hops
                        .iter()
                        .map(|&(t, hop)| row[org.tag_state(t).index()] * hop)
                        .sum();
                });
        }
        // Reachability column sums, accumulated in fixed query order — the
        // same order the incremental path recomputes them in, so cached
        // sums never drift from a fresh evaluation.
        self.reach_sum.clear();
        self.reach_sum.resize(n_slots, 0.0);
        {
            let Evaluator {
                reach, reach_sum, ..
            } = self;
            for qi in 0..nq {
                let row = &reach[qi * n_slots..(qi + 1) * n_slots];
                for (sum, &v) in reach_sum.iter_mut().zip(row) {
                    *sum += v;
                }
            }
        }
        // Table probabilities.
        self.sum_table_prob = 0.0;
        for (ti, table) in ctx.tables().iter().enumerate() {
            let p = self.compute_table_prob(table);
            self.table_prob[ti] = p;
            self.sum_table_prob += self.tw(ti) * p;
        }
    }

    fn compute_table_prob(&self, table: &crate::ctx::LocalTable) -> f64 {
        let mut miss = 1.0f64;
        for &a in &table.attrs {
            miss *= 1.0 - self.disc[self.rep_of_attr[a as usize] as usize];
        }
        1.0 - miss
    }

    /// Incrementally re-evaluate after an operation. `dirty_parents` are
    /// the states whose outgoing transition distribution changed (from
    /// [`crate::ops::OpOutcome`]). Returns an undo token and cost counters.
    ///
    /// The affected subgraph and the list of *active parents* (states with
    /// an affected child, in topological order) are computed once — they
    /// are query-independent — and the per-query re-propagation then runs
    /// in parallel over the reach rows.
    pub fn apply_delta(
        &mut self,
        ctx: &OrgContext,
        org: &Organization,
        dirty_parents: &[StateId],
    ) -> (EvalUndo, DeltaStats) {
        let n_slots = self.n_slots;
        let nq = self.queries.len();
        debug_assert_eq!(org.n_slots(), n_slots, "slot count changed; rebuild");
        let mut undo = EvalUndo {
            old_sum: self.sum_table_prob,
            ..Default::default()
        };
        // Affected set: descendants of the dirty parents' children.
        let mut seeds = std::mem::take(&mut self.seeds_scratch);
        seeds.clear();
        for &p in dirty_parents {
            if !org.state(p).alive {
                continue;
            }
            for &c in &org.state(p).children {
                if org.state(c).alive && self.seed_set.insert(c.0) {
                    seeds.push(c);
                }
            }
        }
        for &c in &seeds {
            self.seed_set.remove(c.0);
        }
        let mut affected = std::mem::take(&mut self.affected_scratch);
        affected.clear();
        let mut stack = std::mem::take(&mut self.stack_scratch);
        org.descendants_of_into(&seeds, &mut self.affected_mark, &mut stack, &mut affected);
        self.stack_scratch = stack;
        self.seeds_scratch = seeds;
        if affected.is_empty() {
            self.affected_scratch = affected;
            return (undo, DeltaStats::default());
        }
        // The op changed the dirty parents' children or child topics: their
        // cached child matrices are stale now, and stale again if the op is
        // rolled back after the refresh below.
        for &p in dirty_parents {
            if org.state(p).alive {
                self.child_dirty[p.index()] = true;
                undo.dirty_states.push(p.0);
            }
        }
        // Active parents: alive states with an affected child, in
        // topological order — computed once (the per-query loop used to
        // rescan the entire order for every query). Stale child matrices
        // are refreshed here, serially, so the parallel phase below reads
        // them immutably.
        let order = org.topo_order();
        let mut active = std::mem::take(&mut self.active_scratch);
        active.clear();
        for &p in order {
            let st = org.state(p);
            if st.children.is_empty() {
                continue;
            }
            if st.children.iter().any(|c| self.affected_mark[c.index()]) {
                if self.child_dirty[p.index()] {
                    refresh_child_mat(&mut self.child_mats[p.index()], org, p, self.dim);
                    self.child_dirty[p.index()] = false;
                }
                active.push(p);
            }
        }
        // Save-and-recompute, one parallel task per query row.
        let n_aff = affected.len();
        undo.slots.extend(affected.iter().map(|s| s.0));
        undo.sum_values
            .extend(affected.iter().map(|&s| self.reach_sum[s.index()]));
        undo.reach_values.resize(nq * n_aff, 0.0);
        let root = org.root();
        let gamma = self.nav.gamma;
        let dim = self.dim;
        {
            let Evaluator {
                reach,
                affected_mark,
                child_mats,
                query_units,
                ..
            } = self;
            let mark: &[bool] = affected_mark;
            let child_mats: &[Vec<f32>] = child_mats;
            let query_units: &[f32] = query_units;
            let affected: &[StateId] = &affected;
            let active: &[StateId] = &active;
            reach
                .par_chunks_mut(n_slots.max(1))
                .zip(undo.reach_values.par_chunks_mut(n_aff))
                .enumerate()
                .for_each_init(Vec::new, |weights, (qi, (row, saved))| {
                    let unit = &query_units[qi * dim..(qi + 1) * dim];
                    for (k, &s) in affected.iter().enumerate() {
                        saved[k] = row[s.index()];
                        row[s.index()] = if s == root { 1.0 } else { 0.0 };
                    }
                    for &p in active {
                        let r = row[p.index()];
                        if r == 0.0 {
                            continue;
                        }
                        let st = org.state(p);
                        weights_from_mat(
                            &child_mats[p.index()],
                            st.children.len(),
                            gamma,
                            unit,
                            weights,
                        );
                        for (&c, &w) in st.children.iter().zip(weights.iter()) {
                            if mark[c.index()] {
                                row[c.index()] += r * w;
                            }
                        }
                    }
                });
        }
        // Recompute the affected columns' sums from scratch in query order
        // (serial, fixed order ⇒ bit-equal to a full evaluation's sums).
        {
            let mut sums = std::mem::take(&mut self.sum_scratch);
            sums.clear();
            sums.resize(n_aff, 0.0);
            for qi in 0..nq {
                let row = &self.reach[qi * n_slots..(qi + 1) * n_slots];
                for (k, &s) in affected.iter().enumerate() {
                    sums[k] += row[s.index()];
                }
            }
            for (k, &s) in affected.iter().enumerate() {
                self.reach_sum[s.index()] = sums[k];
            }
            self.sum_scratch = sums;
        }
        // Discovery updates: queries whose representative has a tag whose
        // tag state is affected (bitset-deduplicated).
        let mut dirty_queries = std::mem::take(&mut self.dirty_query_scratch);
        dirty_queries.clear();
        for &s in &affected {
            if let Some(t) = org.state(s).tag {
                for &qi in &self.queries_of_tag[t as usize] {
                    if self.dirty_query_set.insert(qi) {
                        dirty_queries.push(qi);
                    }
                }
            }
        }
        for &qi in &dirty_queries {
            self.dirty_query_set.remove(qi);
        }
        let mut attrs_covered = 0usize;
        let mut dirty_tables = std::mem::take(&mut self.dirty_table_scratch);
        dirty_tables.clear();
        for &qi in &dirty_queries {
            let q = &self.queries[qi as usize];
            let row = &self.reach[qi as usize * n_slots..(qi as usize + 1) * n_slots];
            let new_disc: f64 = q
                .hops
                .iter()
                .map(|&(t, hop)| row[org.tag_state(t).index()] * hop)
                .sum();
            if new_disc != self.disc[qi as usize] {
                undo.disc_q.push(qi);
                undo.disc_v.push(self.disc[qi as usize]);
                self.disc[qi as usize] = new_disc;
                for &t in &self.tables_of_query[qi as usize] {
                    if self.dirty_table_set.insert(t) {
                        dirty_tables.push(t);
                    }
                }
            }
            attrs_covered += self.query_weight[qi as usize] as usize;
        }
        for &t in &dirty_tables {
            self.dirty_table_set.remove(t);
        }
        for &t in &dirty_tables {
            let p = self.compute_table_prob(&ctx.tables()[t as usize]);
            undo.tables_t.push(t);
            undo.tables_v.push(self.table_prob[t as usize]);
            self.sum_table_prob += self.tw(t as usize) * (p - self.table_prob[t as usize]);
            self.table_prob[t as usize] = p;
        }
        // Clear markers, hand the scratch buffers back.
        for &s in &affected {
            self.affected_mark[s.index()] = false;
        }
        let stats = DeltaStats {
            states_visited: affected.len(),
            queries_evaluated: dirty_queries.len(),
            attrs_covered,
        };
        self.affected_scratch = affected;
        self.active_scratch = active;
        self.dirty_query_scratch = dirty_queries;
        self.dirty_table_scratch = dirty_tables;
        (undo, stats)
    }

    /// The seed revision's incremental evaluation, kept verbatim as an
    /// honest in-tree baseline for `dln-bench`: uncached Kahn topological
    /// sort, a full-order rescan per query, a scattered per-child dot
    /// product per transition, `Vec::contains` deduplication, and the
    /// triple-per-entry undo log. Semantics (and result bits) are
    /// identical to [`apply_delta`]; only the constant factors differ.
    ///
    /// [`apply_delta`]: Evaluator::apply_delta
    pub fn apply_delta_uncached(
        &mut self,
        ctx: &OrgContext,
        org: &Organization,
        dirty_parents: &[StateId],
    ) -> (EvalUndo, DeltaStats) {
        let n_slots = self.n_slots;
        let nq = self.queries.len();
        let mut undo = EvalUndo {
            old_sum: self.sum_table_prob,
            ..Default::default()
        };
        let mut seeds: Vec<StateId> = Vec::new();
        for &p in dirty_parents {
            if !org.state(p).alive {
                continue;
            }
            for &c in &org.state(p).children {
                if org.state(c).alive && !seeds.contains(&c) {
                    seeds.push(c);
                }
            }
        }
        let affected = org.descendants_of(&seeds);
        if affected.is_empty() {
            return (undo, DeltaStats::default());
        }
        for &s in &affected {
            self.affected_mark[s.index()] = true;
        }
        undo.slots.extend(affected.iter().map(|s| s.0));
        undo.sum_values
            .extend(affected.iter().map(|&s| self.reach_sum[s.index()]));
        let order = org.compute_topo_order();
        let root = org.root();
        let mut weights: Vec<f64> = Vec::new();
        for qi in 0..nq {
            let attr = self.queries[qi].attr;
            let unit = &ctx.attr(attr).unit_topic;
            let row = &mut self.reach[qi * n_slots..(qi + 1) * n_slots];
            for &s in &affected {
                undo.reach_aos.push((qi as u32, s.0, row[s.index()]));
                row[s.index()] = if s == root { 1.0 } else { 0.0 };
            }
            for &p in &order {
                let st = org.state(p);
                if st.children.is_empty() || row[p.index()] == 0.0 {
                    continue;
                }
                if !st.children.iter().any(|c| self.affected_mark[c.index()]) {
                    continue;
                }
                transition_weights(org, self.nav.gamma, p, unit, &mut weights);
                let r = row[p.index()];
                for (&c, &w) in st.children.iter().zip(weights.iter()) {
                    if self.affected_mark[c.index()] {
                        row[c.index()] += r * w;
                    }
                }
            }
        }
        // Column sums for the affected slots (query order, as everywhere).
        {
            let mut sums = vec![0.0f64; affected.len()];
            for qi in 0..nq {
                let row = &self.reach[qi * n_slots..(qi + 1) * n_slots];
                for (k, &s) in affected.iter().enumerate() {
                    sums[k] += row[s.index()];
                }
            }
            for (k, &s) in affected.iter().enumerate() {
                self.reach_sum[s.index()] = sums[k];
            }
        }
        let mut dirty_queries: Vec<u32> = Vec::new();
        for &s in &affected {
            if let Some(t) = org.state(s).tag {
                for &qi in &self.queries_of_tag[t as usize] {
                    if !dirty_queries.contains(&qi) {
                        dirty_queries.push(qi);
                    }
                }
            }
        }
        let mut attrs_covered = 0usize;
        let mut dirty_tables: Vec<u32> = Vec::new();
        for &qi in &dirty_queries {
            let new_disc: f64 = self.queries[qi as usize]
                .hops
                .iter()
                .map(|&(t, hop)| self.reach[qi as usize * n_slots + org.tag_state(t).index()] * hop)
                .sum();
            if new_disc != self.disc[qi as usize] {
                undo.disc_q.push(qi);
                undo.disc_v.push(self.disc[qi as usize]);
                self.disc[qi as usize] = new_disc;
                for &t in &self.tables_of_query[qi as usize] {
                    if !dirty_tables.contains(&t) {
                        dirty_tables.push(t);
                    }
                }
            }
            attrs_covered += self.query_weight[qi as usize] as usize;
        }
        for &t in &dirty_tables {
            let p = self.compute_table_prob(&ctx.tables()[t as usize]);
            undo.tables_t.push(t);
            undo.tables_v.push(self.table_prob[t as usize]);
            self.sum_table_prob += self.tw(t as usize) * (p - self.table_prob[t as usize]);
            self.table_prob[t as usize] = p;
        }
        for &s in &affected {
            self.affected_mark[s.index()] = false;
        }
        let stats = DeltaStats {
            states_visited: affected.len(),
            queries_evaluated: dirty_queries.len(),
            attrs_covered,
        };
        (undo, stats)
    }

    /// Roll back a delta exactly (inverse of [`apply_delta`]).
    ///
    /// [`apply_delta`]: Evaluator::apply_delta
    pub fn rollback(&mut self, undo: EvalUndo) {
        let n_slots = self.n_slots;
        let n_aff = undo.slots.len();
        if !undo.reach_aos.is_empty() {
            // Baseline (AoS) path.
            for &(q, slot, v) in undo.reach_aos.iter().rev() {
                self.reach[q as usize * n_slots + slot as usize] = v;
            }
        } else if n_aff > 0 {
            for (qi, saved) in undo.reach_values.chunks_exact(n_aff).enumerate() {
                let row = &mut self.reach[qi * n_slots..(qi + 1) * n_slots];
                for (k, &s) in undo.slots.iter().enumerate() {
                    row[s as usize] = saved[k];
                }
            }
        }
        for (k, &s) in undo.slots.iter().enumerate() {
            self.reach_sum[s as usize] = undo.sum_values[k];
        }
        for (&q, &v) in undo.disc_q.iter().zip(&undo.disc_v) {
            self.disc[q as usize] = v;
        }
        for (&t, &v) in undo.tables_t.iter().zip(&undo.tables_v) {
            self.table_prob[t as usize] = v;
        }
        self.sum_table_prob = undo.old_sum;
        // The operation this undo belongs to is itself rolled back: the
        // child matrices refreshed during the delta go stale again.
        for &p in &undo.dirty_states {
            self.child_dirty[p as usize] = true;
        }
    }

    /// Deep snapshot of the evaluator for a speculative-evaluation worker
    /// replica: reach matrix, maintained sums, discovery/table state and
    /// the child-topic matrix cache are all cloned, so a fork observes
    /// exactly what `self` observes — applying the same delta sequence to
    /// both yields bit-identical effectiveness, stats and rollbacks.
    pub fn fork(&self) -> Evaluator {
        Evaluator {
            nav: self.nav,
            queries: self.queries.clone(),
            rep_of_attr: self.rep_of_attr.clone(),
            query_weight: self.query_weight.clone(),
            dim: self.dim,
            n_slots: self.n_slots,
            reach: self.reach.clone(),
            reach_sum: self.reach_sum.clone(),
            disc: self.disc.clone(),
            query_units: self.query_units.clone(),
            tables_of_query: self.tables_of_query.clone(),
            queries_of_tag: self.queries_of_tag.clone(),
            table_prob: self.table_prob.clone(),
            sum_table_prob: self.sum_table_prob,
            table_weight: self.table_weight.clone(),
            weight_total: self.weight_total,
            child_mats: self.child_mats.clone(),
            child_dirty: self.child_dirty.clone(),
            affected_mark: self.affected_mark.clone(),
            seed_set: self.seed_set.clone(),
            dirty_query_set: self.dirty_query_set.clone(),
            dirty_table_set: self.dirty_table_set.clone(),
            seeds_scratch: Vec::new(),
            stack_scratch: Vec::new(),
            affected_scratch: Vec::new(),
            active_scratch: Vec::new(),
            sum_scratch: Vec::new(),
            dirty_query_scratch: Vec::new(),
            dirty_table_scratch: Vec::new(),
        }
    }

    /// The cost counters [`apply_delta`] would return for `dirty_parents`
    /// against the current organization, *without* evaluating: the affected
    /// subgraph and the dirty-query census are pure graph/tag reads, so the
    /// counters of a speculation whose full evaluation was cancelled can
    /// still be charged to the search stats. Leaves the reach matrix, the
    /// child-matrix cache and every other observable untouched.
    ///
    /// [`apply_delta`]: Evaluator::apply_delta
    pub fn delta_stats_only(
        &mut self,
        org: &Organization,
        dirty_parents: &[StateId],
    ) -> DeltaStats {
        let mut seeds = std::mem::take(&mut self.seeds_scratch);
        seeds.clear();
        for &p in dirty_parents {
            if !org.state(p).alive {
                continue;
            }
            for &c in &org.state(p).children {
                if org.state(c).alive && self.seed_set.insert(c.0) {
                    seeds.push(c);
                }
            }
        }
        for &c in &seeds {
            self.seed_set.remove(c.0);
        }
        let mut affected = std::mem::take(&mut self.affected_scratch);
        affected.clear();
        let mut stack = std::mem::take(&mut self.stack_scratch);
        org.descendants_of_into(&seeds, &mut self.affected_mark, &mut stack, &mut affected);
        self.stack_scratch = stack;
        self.seeds_scratch = seeds;
        let mut dirty_queries = std::mem::take(&mut self.dirty_query_scratch);
        dirty_queries.clear();
        for &s in &affected {
            if let Some(t) = org.state(s).tag {
                for &qi in &self.queries_of_tag[t as usize] {
                    if self.dirty_query_set.insert(qi) {
                        dirty_queries.push(qi);
                    }
                }
            }
        }
        for &qi in &dirty_queries {
            self.dirty_query_set.remove(qi);
        }
        let attrs_covered = dirty_queries
            .iter()
            .map(|&qi| self.query_weight[qi as usize] as usize)
            .sum();
        for &s in &affected {
            self.affected_mark[s.index()] = false;
        }
        let stats = DeltaStats {
            states_visited: affected.len(),
            queries_evaluated: dirty_queries.len(),
            attrs_covered,
        };
        self.affected_scratch = affected;
        self.dirty_query_scratch = dirty_queries;
        stats
    }
}

/// Refresh one state's cached child-topic matrix from the organization
/// (row-major `n_children × dim`, rows bit-copied from the child unit
/// topics).
fn refresh_child_mat(mat: &mut Vec<f32>, org: &Organization, s: StateId, dim: usize) {
    let st = org.state(s);
    mat.clear();
    mat.reserve(st.children.len() * dim);
    for &c in &st.children {
        mat.extend_from_slice(&org.state(c).unit_topic);
    }
}

/// Transition probabilities (Eq 1) from a cached child-topic matrix: one
/// streaming mat-vec over contiguous rows instead of a pointer-chase per
/// child. Arithmetic is element-for-element identical to
/// [`transition_weights`], so cached and uncached paths agree bit-for-bit.
fn weights_from_mat(
    mat: &[f32],
    n_children: usize,
    gamma: f32,
    query_unit: &[f32],
    out: &mut Vec<f64>,
) {
    batch_dot_wide(mat, query_unit, n_children, out);
    let scale = gamma as f64 / n_children as f64;
    let mut max_score = f64::NEG_INFINITY;
    for v in out.iter_mut() {
        *v *= scale;
        max_score = max_score.max(*v);
    }
    let mut sum = 0.0f64;
    for v in out.iter_mut() {
        *v = (*v - max_score).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in out.iter_mut() {
            *v /= sum;
        }
    }
}

/// Transition probabilities from `s` to each of its children for a query
/// unit vector (Eq 1), written into `out` (parallel to `children`),
/// reading child topics directly from the organization.
fn transition_weights(
    org: &Organization,
    gamma: f32,
    s: StateId,
    query_unit: &[f32],
    out: &mut Vec<f64>,
) {
    let st = org.state(s);
    let n = st.children.len();
    out.clear();
    out.reserve(n);
    let scale = gamma as f64 / n as f64;
    let mut max_score = f64::NEG_INFINITY;
    for &c in &st.children {
        let kappa = dot(&org.state(c).unit_topic, query_unit) as f64;
        let score = scale * kappa;
        max_score = max_score.max(score);
        out.push(score);
    }
    let mut sum = 0.0f64;
    for v in out.iter_mut() {
        *v = (*v - max_score).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in out.iter_mut() {
            *v /= sum;
        }
    }
}

/// Final-hop probability `P(attr | tag state)` (§4.3.4): a softmax over the
/// tag's attribute population with the same form as Eq 1 (branching factor
/// = the population size), evaluated at query topic = the attribute itself.
fn final_hop(ctx: &OrgContext, gamma: f32, tag: u32, attr: u32) -> f64 {
    let pop = &ctx.tag(tag).attrs;
    debug_assert!(pop.contains(&attr));
    let unit = ctx.attr_unit(attr);
    let scale = gamma as f64 / pop.len() as f64;
    let mut max_score = f64::NEG_INFINITY;
    let mut scores = Vec::with_capacity(pop.len());
    let mut own = 0usize;
    for (i, &b) in pop.iter().enumerate() {
        if b == attr {
            own = i;
        }
        let s = scale * dot(ctx.attr_unit(b), unit) as f64;
        max_score = max_score.max(s);
        scores.push(s);
    }
    let mut sum = 0.0;
    for s in &mut scores {
        *s = (*s - max_score).exp();
        sum += *s;
    }
    if sum > 0.0 {
        scores[own] / sum
    } else {
        0.0
    }
}

/// Exact discovery probabilities of *every* context attribute under its own
/// query topic (`X = A`, Def. 1) — the quantity reported by the paper's
/// success-probability experiments. Runs the reach DP once per attribute,
/// fanning out over `n_threads`.
pub fn discovery_probs(
    ctx: &OrgContext,
    org: &Organization,
    nav: NavConfig,
    n_threads: usize,
) -> Vec<f64> {
    let n = ctx.n_attrs();
    let order = org.topo_order();
    let n_threads = n_threads.max(1).min(n.max(1));
    let mut out = vec![0.0f64; n];
    if n == 0 {
        return out;
    }
    let chunk = n.div_ceil(n_threads);
    let chunks: Vec<(usize, &mut [f64])> = out.chunks_mut(chunk).enumerate().collect();
    std::thread::scope(|scope| {
        for (ci, slot) in chunks {
            let start = ci * chunk;
            scope.spawn(move || {
                let mut reach = vec![0.0f64; org.n_slots()];
                let mut weights: Vec<f64> = Vec::new();
                for (i, o) in slot.iter_mut().enumerate() {
                    let attr = (start + i) as u32;
                    let a = ctx.attr(attr);
                    let unit = ctx.attr_unit(attr);
                    reach.iter_mut().for_each(|r| *r = 0.0);
                    reach[org.root().index()] = 1.0;
                    for &s in order {
                        let st = org.state(s);
                        if st.children.is_empty() || reach[s.index()] == 0.0 {
                            continue;
                        }
                        transition_weights(org, nav.gamma, s, unit, &mut weights);
                        let r = reach[s.index()];
                        for (&c, &w) in st.children.iter().zip(weights.iter()) {
                            reach[c.index()] += r * w;
                        }
                    }
                    *o = a
                        .tags
                        .iter()
                        .map(|&t| {
                            reach[org.tag_state(t).index()] * final_hop(ctx, nav.gamma, t, attr)
                        })
                        .sum();
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::Representatives;
    use crate::init::{clustering_org, flat_org};
    use crate::ops;
    use dln_synth::TagCloudConfig;

    fn setup() -> (OrgContext, Organization) {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        (ctx, org)
    }

    fn evaluator(ctx: &OrgContext, org: &Organization) -> Evaluator {
        let reps = Representatives::exact(ctx);
        Evaluator::new(ctx, org, NavConfig::default(), &reps)
    }

    /// Every observable float of the evaluator, as bits.
    fn fingerprint_bits(ev: &Evaluator, ctx: &OrgContext) -> Vec<u64> {
        let mut bits = vec![ev.effectiveness().to_bits()];
        bits.extend((0..ctx.n_attrs() as u32).map(|a| ev.attr_discovery(a).to_bits()));
        bits.extend((0..ctx.n_tables() as u32).map(|t| ev.table_discovery(t).to_bits()));
        for q in 0..ev.n_queries() {
            bits.extend(ev.reach_row(q).iter().map(|v| v.to_bits()));
        }
        bits.extend(ev.reachability().iter().map(|v| v.to_bits()));
        bits
    }

    #[test]
    fn reach_probabilities_are_a_distribution_over_levels() {
        let (ctx, org) = setup();
        let ev = evaluator(&ctx, &org);
        // For each query, the reach of the root is 1 and the total reach
        // of the tag states is ≤ 1 (paths can only lose mass at splits...
        // actually in a tree it is exactly 1).
        for qi in 0..ev.n_queries() {
            let reach = ev.reach_row(qi);
            assert!((reach[org.root().index()] - 1.0).abs() < 1e-12);
            let leaf_sum: f64 = org.tag_states().iter().map(|ts| reach[ts.index()]).sum();
            assert!(
                (leaf_sum - 1.0).abs() < 1e-6,
                "tree mass conservation: {leaf_sum}"
            );
        }
    }

    #[test]
    fn discovery_probs_are_probabilities() {
        let (ctx, org) = setup();
        let ev = evaluator(&ctx, &org);
        for a in 0..ctx.n_attrs() as u32 {
            let d = ev.attr_discovery(a);
            assert!((0.0..=1.0).contains(&d), "disc {d} out of range");
        }
        for t in 0..ctx.n_tables() as u32 {
            let p = ev.table_discovery(t);
            assert!((0.0..=1.0).contains(&p));
        }
        let eff = ev.effectiveness();
        assert!(eff > 0.0 && eff < 1.0, "effectiveness {eff}");
    }

    #[test]
    fn effectiveness_is_mean_of_table_probs() {
        let (ctx, org) = setup();
        let ev = evaluator(&ctx, &org);
        let mean: f64 = (0..ctx.n_tables() as u32)
            .map(|t| ev.table_discovery(t))
            .sum::<f64>()
            / ctx.n_tables() as f64;
        assert!((ev.effectiveness() - mean).abs() < 1e-12);
    }

    #[test]
    fn reachability_matches_row_means() {
        let (ctx, org) = setup();
        let ev = evaluator(&ctx, &org);
        let fast = ev.reachability();
        let nq = ev.n_queries();
        for (slot, &cached) in fast.iter().enumerate().take(org.n_slots()) {
            let mean: f64 = (0..nq).map(|q| ev.reach_row(q)[slot]).sum::<f64>() / nq as f64;
            assert!(
                (cached - mean).abs() < 1e-12,
                "slot {slot}: cached {cached} vs direct {mean}"
            );
        }
        let mut buf = vec![99.0f64; 3];
        ev.reachability_into(&mut buf);
        assert_eq!(buf, fast);
    }

    #[test]
    fn clustering_beats_flat_baseline() {
        // The core claim of Figure 2(a)'s first comparison.
        let (ctx, _) = setup();
        let flat = flat_org(&ctx);
        let clus = clustering_org(&ctx);
        let ev_flat = evaluator(&ctx, &flat);
        let ev_clus = evaluator(&ctx, &clus);
        assert!(
            ev_clus.effectiveness() > ev_flat.effectiveness(),
            "clustering {} must beat flat {}",
            ev_clus.effectiveness(),
            ev_flat.effectiveness()
        );
    }

    #[test]
    fn own_attribute_has_high_final_hop() {
        let (ctx, _) = setup();
        // For a TagCloud attribute, the final hop compares it against its
        // tag siblings; it must be at least the uniform share.
        for a in (0..ctx.n_attrs() as u32).step_by(17) {
            let t = ctx.attr(a).tags[0];
            let pop = ctx.tag(t).attrs.len();
            let hop = final_hop(&ctx, 20.0, t, a);
            assert!(
                hop >= 1.0 / (pop as f64) - 1e-9,
                "hop {hop} below uniform 1/{pop}"
            );
        }
    }

    #[test]
    fn incremental_delta_matches_full_recompute() {
        let (ctx, mut org) = setup();
        let mut ev = evaluator(&ctx, &org);
        let reach = ev.reachability();
        // Apply an ADD_PARENT and compare incremental vs full evaluation.
        let s = org.tag_state(3);
        let out = ops::try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (_undo, stats) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
        assert!(stats.states_visited > 0);
        let eff_incremental = ev.effectiveness();
        let ev_full = evaluator(&ctx, &org);
        assert!(
            (eff_incremental - ev_full.effectiveness()).abs() < 1e-9,
            "incremental {} vs full {}",
            eff_incremental,
            ev_full.effectiveness()
        );
        // Per-attribute agreement.
        for a in 0..ctx.n_attrs() as u32 {
            assert!((ev.attr_discovery(a) - ev_full.attr_discovery(a)).abs() < 1e-9);
        }
        // Maintained reachability sums agree with the fresh evaluator's.
        let (inc, full) = (ev.reachability(), ev_full.reachability());
        for (a, b) in inc.iter().zip(&full) {
            assert!((a - b).abs() < 1e-9, "reachability drift: {a} vs {b}");
        }
    }

    #[test]
    fn delta_rollback_restores_evaluator_bit_for_bit() {
        let (ctx, mut org) = setup();
        let mut ev = evaluator(&ctx, &org);
        let before = fingerprint_bits(&ev, &ctx);
        let reach = ev.reachability();
        let s = org.tag_state(5);
        let out = ops::try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (undo, _) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
        ev.rollback(undo);
        ops::undo(&mut org, &ctx, out);
        assert_eq!(
            fingerprint_bits(&ev, &ctx),
            before,
            "rollback must restore every observable bit"
        );
        // And the evaluator still agrees with a fresh one.
        let fresh = evaluator(&ctx, &org);
        assert!((ev.effectiveness() - fresh.effectiveness()).abs() < 1e-9);
        // The child-matrix cache was re-marked stale correctly: the next
        // delta must still match a full recompute.
        let reach2 = ev.reachability();
        let s2 = org.tag_state(1);
        let out2 = ops::try_add_parent(&mut org, &ctx, s2, &reach2).expect("applicable");
        let (_u, _) = ev.apply_delta(&ctx, &org, &out2.dirty_parents);
        let fresh2 = evaluator(&ctx, &org);
        assert!((ev.effectiveness() - fresh2.effectiveness()).abs() < 1e-9);
    }

    #[test]
    fn incremental_matches_after_delete_parent() {
        let (ctx, mut org) = setup();
        let mut ev = evaluator(&ctx, &org);
        let reach = ev.reachability();
        let s = (0..ctx.n_tags() as u32)
            .map(|t| org.tag_state(t))
            .find(|&ts| {
                org.state(ts)
                    .parents
                    .iter()
                    .any(|&p| p != org.root() && org.state(p).tag.is_none())
            })
            .expect("deep tag state");
        let out = ops::try_delete_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (_undo, stats) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
        assert!(stats.states_visited > 0);
        let ev_full = evaluator(&ctx, &org);
        assert!(
            (ev.effectiveness() - ev_full.effectiveness()).abs() < 1e-9,
            "incremental {} vs full {}",
            ev.effectiveness(),
            ev_full.effectiveness()
        );
    }

    #[test]
    fn uncached_baseline_matches_cached_delta_bitwise() {
        let (ctx, mut org) = setup();
        let mut ev_fast = evaluator(&ctx, &org);
        let mut ev_base = evaluator(&ctx, &org);
        let before = fingerprint_bits(&ev_fast, &ctx);
        let reach = ev_fast.reachability();
        let s = org.tag_state(3);
        let out = ops::try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (u1, st1) = ev_fast.apply_delta(&ctx, &org, &out.dirty_parents);
        let (u2, st2) = ev_base.apply_delta_uncached(&ctx, &org, &out.dirty_parents);
        assert_eq!(st1.states_visited, st2.states_visited);
        assert_eq!(st1.queries_evaluated, st2.queries_evaluated);
        assert_eq!(
            fingerprint_bits(&ev_fast, &ctx),
            fingerprint_bits(&ev_base, &ctx),
            "cached and baseline deltas must agree bit-for-bit"
        );
        // Both rollback paths restore the identical pre-delta state.
        ev_fast.rollback(u1);
        ev_base.rollback(u2);
        assert_eq!(fingerprint_bits(&ev_fast, &ctx), before);
        assert_eq!(fingerprint_bits(&ev_base, &ctx), before);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (ctx, mut org) = setup();
        let run = |threads: usize, org: &mut Organization| {
            rayon::set_num_threads(threads);
            let mut ev = evaluator(&ctx, org);
            let reach = ev.reachability();
            let out = ops::try_add_parent(org, &ctx, org.tag_state(2), &reach).expect("applicable");
            let (_u, _) = ev.apply_delta(&ctx, org, &out.dirty_parents);
            let bits = fingerprint_bits(&ev, &ctx);
            ops::undo(org, &ctx, out);
            rayon::set_num_threads(0);
            bits
        };
        let serial = run(1, &mut org);
        for t in [4, 8] {
            assert_eq!(
                run(t, &mut org),
                serial,
                "results must be bit-identical with {t} threads"
            );
        }
    }

    #[test]
    fn affected_subgraph_is_a_strict_subset() {
        // Pruning claim of Figure 3: a local change re-evaluates fewer than
        // all states.
        let (ctx, mut org) = setup();
        let mut ev = evaluator(&ctx, &org);
        let reach = ev.reachability();
        let s = org.tag_state(1);
        let out = ops::try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (_undo, stats) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
        assert!(
            stats.states_visited < org.n_alive(),
            "visited {} of {} states",
            stats.states_visited,
            org.n_alive()
        );
    }

    #[test]
    fn exact_discovery_probs_match_evaluator_with_exact_reps() {
        let (ctx, org) = setup();
        let ev = evaluator(&ctx, &org);
        let exact = discovery_probs(&ctx, &org, NavConfig::default(), 2);
        for a in 0..ctx.n_attrs() as u32 {
            assert!(
                (exact[a as usize] - ev.attr_discovery(a)).abs() < 1e-9,
                "attr {a}: {} vs {}",
                exact[a as usize],
                ev.attr_discovery(a)
            );
        }
    }

    #[test]
    fn representative_approximation_is_close() {
        let (ctx, org) = setup();
        let exact_ev = evaluator(&ctx, &org);
        let approx_reps = Representatives::kmedoids(&ctx, 0.2, 7);
        let approx_ev = Evaluator::new(&ctx, &org, NavConfig::default(), &approx_reps);
        let (e, a) = (exact_ev.effectiveness(), approx_ev.effectiveness());
        assert!(
            (e - a).abs() / e < 0.5,
            "approx effectiveness {a} far from exact {e}"
        );
    }

    #[test]
    #[should_panic(expected = "gamma must be strictly positive")]
    fn non_positive_gamma_panics() {
        let (ctx, org) = setup();
        let reps = Representatives::exact(&ctx);
        Evaluator::new(&ctx, &org, NavConfig { gamma: 0.0 }, &reps);
    }

    #[test]
    fn table_weights_compute_weighted_mean() {
        let (ctx, org) = setup();
        let mut ev = evaluator(&ctx, &org);
        let unweighted = ev.effectiveness();
        // Non-uniform weights: the weighted mean must match a manual one.
        let weights: Vec<f64> = (0..ctx.n_tables()).map(|t| 1.0 + (t % 3) as f64).collect();
        ev.set_table_weights(&weights);
        let manual: f64 = (0..ctx.n_tables() as u32)
            .map(|t| weights[t as usize] * ev.table_discovery(t))
            .sum::<f64>()
            / weights.iter().sum::<f64>();
        assert!(
            (ev.effectiveness() - manual).abs() < 1e-12,
            "weighted mean {} vs manual {manual}",
            ev.effectiveness()
        );
        // Uniform weights reproduce the unweighted mean (up to fp error).
        ev.set_table_weights(&vec![2.5; ctx.n_tables()]);
        assert!((ev.effectiveness() - unweighted).abs() < 1e-12);
        // Clearing restores the exact unweighted objective bits.
        ev.set_table_weights(&[]);
        assert_eq!(ev.effectiveness().to_bits(), unweighted.to_bits());
    }

    #[test]
    fn unweighted_evaluator_is_bit_identical_through_deltas() {
        // The weight seam must not perturb the unweighted path: an
        // evaluator that set-and-cleared weights matches one that never
        // touched them, bit for bit, through a delta + rollback cycle.
        let (ctx, mut org) = setup();
        let mut ev_plain = evaluator(&ctx, &org);
        let mut ev_seam = evaluator(&ctx, &org);
        ev_seam.set_table_weights(&vec![3.0; ctx.n_tables()]);
        ev_seam.set_table_weights(&[]);
        let reach = ev_plain.reachability();
        let s = org.tag_state(4);
        let out = ops::try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (u1, _) = ev_plain.apply_delta(&ctx, &org, &out.dirty_parents);
        let (u2, _) = ev_seam.apply_delta(&ctx, &org, &out.dirty_parents);
        assert_eq!(
            ev_plain.effectiveness().to_bits(),
            ev_seam.effectiveness().to_bits()
        );
        ev_plain.rollback(u1);
        ev_seam.rollback(u2);
        ops::undo(&mut org, &ctx, out);
        assert_eq!(
            fingerprint_bits(&ev_plain, &ctx),
            fingerprint_bits(&ev_seam, &ctx)
        );
    }

    #[test]
    fn weighted_delta_and_rollback_stay_consistent() {
        // Under non-uniform weights, the incrementally maintained sum must
        // agree with a from-scratch weighted aggregation after a delta, and
        // rollback must restore the pre-delta value exactly.
        let (ctx, mut org) = setup();
        let mut ev = evaluator(&ctx, &org);
        let weights: Vec<f64> = (0..ctx.n_tables()).map(|t| 0.5 + (t % 4) as f64).collect();
        ev.set_table_weights(&weights);
        let before = ev.effectiveness();
        let reach = ev.reachability();
        let s = org.tag_state(2);
        let out = ops::try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (undo, _) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
        let manual: f64 = (0..ctx.n_tables() as u32)
            .map(|t| weights[t as usize] * ev.table_discovery(t))
            .sum::<f64>()
            / weights.iter().sum::<f64>();
        assert!(
            (ev.effectiveness() - manual).abs() < 1e-9,
            "incremental weighted sum drifted: {} vs {manual}",
            ev.effectiveness()
        );
        ev.rollback(undo);
        ops::undo(&mut org, &ctx, out);
        assert_eq!(ev.effectiveness().to_bits(), before.to_bits());
    }

    #[test]
    #[should_panic(expected = "one weight per local table")]
    fn wrong_weight_length_panics() {
        let (ctx, org) = setup();
        let mut ev = evaluator(&ctx, &org);
        ev.set_table_weights(&[1.0]);
    }
}
