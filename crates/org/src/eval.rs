//! The navigation model and organization-effectiveness evaluation.
//!
//! Implements §2.2–§2.4 of the paper:
//!
//! * **Transition probability** (Eq 1): from state `s`, a user searching
//!   for topic `X` moves to child `c` with probability
//!   `softmax_c( (γ/|ch(s)|) · κ(c, X) )`, where `κ` is the cosine
//!   similarity of topic vectors and the `1/|ch(s)|` factor penalizes
//!   large branching factors.
//! * **Reach probability** (Eqs 2–4): propagated from the root through the
//!   DAG in topological order, summing over all discovery sequences.
//! * **Attribute discovery** (Def. 1, instantiated as §4.3.4): the
//!   probability of reaching one of the attribute's tag states times the
//!   probability of selecting the attribute among that tag's attributes.
//! * **Table discovery & effectiveness** (Def. 2, Eqs 5–6).
//!
//! The evaluator holds per-query reach arrays so that a local-search
//! operation only re-evaluates its *affected subgraph* (§3.4): the
//! descendants of the states whose outgoing transition distribution
//! changed. Every delta application returns an undo token so a rejected
//! Metropolis proposal rolls the evaluator back exactly.

use dln_embed::dot;

use crate::approx::Representatives;
use crate::ctx::OrgContext;
use crate::graph::{Organization, StateId};

/// Navigation-model hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct NavConfig {
    /// The γ of Equation 1 (must be strictly positive). Larger values make
    /// users more decisive; the `1/|ch(s)|` branching penalty divides it.
    pub gamma: f32,
}

impl Default for NavConfig {
    fn default() -> Self {
        NavConfig { gamma: 20.0 }
    }
}

/// One evaluation query: a representative attribute standing for a
/// partition of attributes (§3.4). With exact evaluation every attribute is
/// its own representative.
#[derive(Clone, Debug)]
struct Query {
    /// Local id of the representative attribute.
    attr: u32,
    /// Final-hop terms: `(local tag, P(attr | tag state))` for each tag of
    /// the representative. The hop probabilities never change during search
    /// (tag populations are fixed), so they are precomputed.
    hops: Vec<(u32, f64)>,
}

/// Rollback token for [`Evaluator::apply_delta`].
#[derive(Debug, Default)]
pub struct EvalUndo {
    changed_reach: Vec<(u32, u32, f64)>,
    changed_disc: Vec<(u32, f64)>,
    changed_tables: Vec<(u32, f64)>,
    old_sum: f64,
}

/// Re-evaluation cost counters for one delta (feeds Figure 3).
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaStats {
    /// States whose reach probabilities were recomputed.
    pub states_visited: usize,
    /// Discovery-probability evaluations performed (representatives).
    pub queries_evaluated: usize,
    /// Attributes covered by the re-evaluated representatives (exact mode:
    /// equals `queries_evaluated`).
    pub attrs_covered: usize,
}

/// Incremental evaluator of organization effectiveness (Eq 6).
pub struct Evaluator {
    nav: NavConfig,
    queries: Vec<Query>,
    /// Representative (query index) of each local attribute.
    rep_of_attr: Vec<u32>,
    /// Partition size of each query.
    query_weight: Vec<u32>,
    /// `reach[q][slot]`: probability of reaching state `slot` while
    /// searching for query `q`'s topic.
    reach: Vec<Vec<f64>>,
    /// `disc[q]`: discovery probability of query `q`'s own attribute.
    disc: Vec<f64>,
    /// Tables (local ids) containing attributes represented by each query.
    tables_of_query: Vec<Vec<u32>>,
    /// Queries whose representative carries a given local tag.
    queries_of_tag: Vec<Vec<u32>>,
    /// `P(T | O)` per local table (Eq 5 with representative approximation).
    table_prob: Vec<f64>,
    sum_table_prob: f64,
    /// Scratch: per-slot "is affected" marker.
    affected_mark: Vec<bool>,
}

impl Evaluator {
    /// Build an evaluator and run a full evaluation.
    pub fn new(
        ctx: &OrgContext,
        org: &Organization,
        nav: NavConfig,
        reps: &Representatives,
    ) -> Evaluator {
        assert!(nav.gamma > 0.0, "gamma must be strictly positive (Eq 1)");
        let gamma = nav.gamma;
        let mut queries = Vec::with_capacity(reps.reps.len());
        for &attr in &reps.reps {
            let a = ctx.attr(attr);
            let mut hops = Vec::with_capacity(a.tags.len());
            for &t in &a.tags {
                hops.push((t, final_hop(ctx, gamma, t, attr)));
            }
            queries.push(Query { attr, hops });
        }
        let mut query_weight = vec![0u32; queries.len()];
        for &q in &reps.rep_of_attr {
            query_weight[q as usize] += 1;
        }
        // Static maps.
        let mut tables_of_query: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        for (a, &q) in reps.rep_of_attr.iter().enumerate() {
            let t = ctx.attr(a as u32).table;
            if !tables_of_query[q as usize].contains(&t) {
                tables_of_query[q as usize].push(t);
            }
        }
        let mut queries_of_tag: Vec<Vec<u32>> = vec![Vec::new(); ctx.n_tags()];
        for (qi, q) in queries.iter().enumerate() {
            for &(t, _) in &q.hops {
                queries_of_tag[t as usize].push(qi as u32);
            }
        }
        let n_slots = org.n_slots();
        let mut ev = Evaluator {
            nav,
            queries,
            rep_of_attr: reps.rep_of_attr.clone(),
            query_weight,
            reach: Vec::new(),
            disc: Vec::new(),
            tables_of_query,
            queries_of_tag,
            table_prob: vec![0.0; ctx.n_tables()],
            sum_table_prob: 0.0,
            affected_mark: vec![false; n_slots],
        };
        ev.recompute_full(ctx, org);
        ev
    }

    /// Organization effectiveness `P(T | O)` (Eq 6): the mean table
    /// discovery probability over the context's tables.
    pub fn effectiveness(&self) -> f64 {
        if self.table_prob.is_empty() {
            return 0.0;
        }
        self.sum_table_prob / self.table_prob.len() as f64
    }

    /// Discovery probability of a local attribute (via its representative).
    pub fn attr_discovery(&self, attr: u32) -> f64 {
        self.disc[self.rep_of_attr[attr as usize] as usize]
    }

    /// Discovery probability of a local table (Eq 5).
    pub fn table_discovery(&self, table: u32) -> f64 {
        self.table_prob[table as usize]
    }

    /// Mean reach probability of every state slot over all queries —
    /// the reachability of Equation 10, used to pick operation targets.
    pub fn reachability(&self) -> Vec<f64> {
        let n_slots = self.affected_mark.len();
        let mut out = vec![0.0f64; n_slots];
        if self.queries.is_empty() {
            return out;
        }
        for r in &self.reach {
            for (o, v) in out.iter_mut().zip(r.iter()) {
                *o += *v;
            }
        }
        let inv = 1.0 / self.queries.len() as f64;
        out.iter_mut().for_each(|v| *v *= inv);
        out
    }

    /// Number of evaluation queries (representatives).
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// Full (from scratch) evaluation of the current organization.
    pub fn recompute_full(&mut self, ctx: &OrgContext, org: &Organization) {
        let n_slots = org.n_slots();
        self.affected_mark = vec![false; n_slots];
        let order = org.topo_order();
        self.reach = vec![vec![0.0; n_slots]; self.queries.len()];
        self.disc = vec![0.0; self.queries.len()];
        let mut weights: Vec<f64> = Vec::new();
        for (qi, q) in self.queries.iter().enumerate() {
            let unit = &ctx.attr(q.attr).unit_topic;
            let reach = &mut self.reach[qi];
            reach[org.root().index()] = 1.0;
            for &s in &order {
                let st = org.state(s);
                if st.children.is_empty() || reach[s.index()] == 0.0 {
                    continue;
                }
                transition_weights(org, self.nav.gamma, s, unit, &mut weights);
                let r = reach[s.index()];
                for (&c, &w) in st.children.iter().zip(weights.iter()) {
                    reach[c.index()] += r * w;
                }
            }
            self.disc[qi] = q
                .hops
                .iter()
                .map(|&(t, hop)| reach[org.tag_state(t).index()] * hop)
                .sum();
        }
        // Table probabilities.
        self.sum_table_prob = 0.0;
        for (ti, table) in ctx.tables().iter().enumerate() {
            let p = self.compute_table_prob(table);
            self.table_prob[ti] = p;
            self.sum_table_prob += p;
        }
    }

    fn compute_table_prob(&self, table: &crate::ctx::LocalTable) -> f64 {
        let mut miss = 1.0f64;
        for &a in &table.attrs {
            miss *= 1.0 - self.disc[self.rep_of_attr[a as usize] as usize];
        }
        1.0 - miss
    }

    /// Incrementally re-evaluate after an operation. `dirty_parents` are
    /// the states whose outgoing transition distribution changed (from
    /// [`crate::ops::OpOutcome`]). Returns an undo token and cost counters.
    pub fn apply_delta(
        &mut self,
        ctx: &OrgContext,
        org: &Organization,
        dirty_parents: &[StateId],
    ) -> (EvalUndo, DeltaStats) {
        let mut undo = EvalUndo {
            old_sum: self.sum_table_prob,
            ..Default::default()
        };
        // Affected set: descendants of the dirty parents' children.
        let mut seeds: Vec<StateId> = Vec::new();
        for &p in dirty_parents {
            if !org.state(p).alive {
                continue;
            }
            for &c in &org.state(p).children {
                if org.state(c).alive && !seeds.contains(&c) {
                    seeds.push(c);
                }
            }
        }
        let affected = org.descendants_of(&seeds);
        if affected.is_empty() {
            return (undo, DeltaStats::default());
        }
        for &s in &affected {
            self.affected_mark[s.index()] = true;
        }
        // Parents to process: any alive state with an affected child, in
        // global topological order (so affected parents are recomputed
        // before their children consume them).
        let order = org.topo_order();
        let root = org.root();
        let mut weights: Vec<f64> = Vec::new();
        for (qi, q) in self.queries.iter().enumerate() {
            let unit = &ctx.attr(q.attr).unit_topic;
            let reach = &mut self.reach[qi];
            // Save and zero affected entries.
            for &s in &affected {
                undo.changed_reach
                    .push((qi as u32, s.0, reach[s.index()]));
                reach[s.index()] = if s == root { 1.0 } else { 0.0 };
            }
            for &p in &order {
                let st = org.state(p);
                if st.children.is_empty() || reach[p.index()] == 0.0 {
                    continue;
                }
                if !st.children.iter().any(|c| self.affected_mark[c.index()]) {
                    continue;
                }
                transition_weights(org, self.nav.gamma, p, unit, &mut weights);
                let r = reach[p.index()];
                for (&c, &w) in st.children.iter().zip(weights.iter()) {
                    if self.affected_mark[c.index()] {
                        reach[c.index()] += r * w;
                    }
                }
            }
        }
        // Discovery updates: queries whose representative has a tag whose
        // tag state is affected.
        let mut dirty_queries: Vec<u32> = Vec::new();
        for &s in &affected {
            if let Some(t) = org.state(s).tag {
                for &qi in &self.queries_of_tag[t as usize] {
                    if !dirty_queries.contains(&qi) {
                        dirty_queries.push(qi);
                    }
                }
            }
        }
        let mut attrs_covered = 0usize;
        let mut dirty_tables: Vec<u32> = Vec::new();
        for &qi in &dirty_queries {
            let q = &self.queries[qi as usize];
            let new_disc: f64 = q
                .hops
                .iter()
                .map(|&(t, hop)| self.reach[qi as usize][org.tag_state(t).index()] * hop)
                .sum();
            if new_disc != self.disc[qi as usize] {
                undo.changed_disc.push((qi, self.disc[qi as usize]));
                self.disc[qi as usize] = new_disc;
                for &t in &self.tables_of_query[qi as usize] {
                    if !dirty_tables.contains(&t) {
                        dirty_tables.push(t);
                    }
                }
            }
            attrs_covered += self.query_weight[qi as usize] as usize;
        }
        for &t in &dirty_tables {
            let p = self.compute_table_prob(&ctx.tables()[t as usize]);
            undo.changed_tables.push((t, self.table_prob[t as usize]));
            self.sum_table_prob += p - self.table_prob[t as usize];
            self.table_prob[t as usize] = p;
        }
        // Clear markers.
        for &s in &affected {
            self.affected_mark[s.index()] = false;
        }
        let stats = DeltaStats {
            states_visited: affected.len(),
            queries_evaluated: dirty_queries.len(),
            attrs_covered,
        };
        (undo, stats)
    }

    /// Roll back a delta exactly (inverse of [`apply_delta`]).
    ///
    /// [`apply_delta`]: Evaluator::apply_delta
    pub fn rollback(&mut self, undo: EvalUndo) {
        for &(q, slot, v) in undo.changed_reach.iter().rev() {
            self.reach[q as usize][slot as usize] = v;
        }
        for &(q, v) in undo.changed_disc.iter().rev() {
            self.disc[q as usize] = v;
        }
        for &(t, v) in undo.changed_tables.iter().rev() {
            self.table_prob[t as usize] = v;
        }
        self.sum_table_prob = undo.old_sum;
    }
}

/// Transition probabilities from `s` to each of its children for a query
/// unit vector (Eq 1), written into `out` (parallel to `children`).
fn transition_weights(
    org: &Organization,
    gamma: f32,
    s: StateId,
    query_unit: &[f32],
    out: &mut Vec<f64>,
) {
    let st = org.state(s);
    let n = st.children.len();
    out.clear();
    out.reserve(n);
    let scale = gamma as f64 / n as f64;
    let mut max_score = f64::NEG_INFINITY;
    for &c in &st.children {
        let kappa = dot(&org.state(c).unit_topic, query_unit) as f64;
        let score = scale * kappa;
        max_score = max_score.max(score);
        out.push(score);
    }
    let mut sum = 0.0f64;
    for v in out.iter_mut() {
        *v = (*v - max_score).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in out.iter_mut() {
            *v /= sum;
        }
    }
}

/// Final-hop probability `P(attr | tag state)` (§4.3.4): a softmax over the
/// tag's attribute population with the same form as Eq 1 (branching factor
/// = the population size), evaluated at query topic = the attribute itself.
fn final_hop(ctx: &OrgContext, gamma: f32, tag: u32, attr: u32) -> f64 {
    let pop = &ctx.tag(tag).attrs;
    debug_assert!(pop.contains(&attr));
    let unit = &ctx.attr(attr).unit_topic;
    let scale = gamma as f64 / pop.len() as f64;
    let mut max_score = f64::NEG_INFINITY;
    let mut scores = Vec::with_capacity(pop.len());
    let mut own = 0usize;
    for (i, &b) in pop.iter().enumerate() {
        if b == attr {
            own = i;
        }
        let s = scale * dot(&ctx.attr(b).unit_topic, unit) as f64;
        max_score = max_score.max(s);
        scores.push(s);
    }
    let mut sum = 0.0;
    for s in &mut scores {
        *s = (*s - max_score).exp();
        sum += *s;
    }
    if sum > 0.0 {
        scores[own] / sum
    } else {
        0.0
    }
}

/// Exact discovery probabilities of *every* context attribute under its own
/// query topic (`X = A`, Def. 1) — the quantity reported by the paper's
/// success-probability experiments. Runs the reach DP once per attribute,
/// fanning out over `n_threads`.
pub fn discovery_probs(
    ctx: &OrgContext,
    org: &Organization,
    nav: NavConfig,
    n_threads: usize,
) -> Vec<f64> {
    let n = ctx.n_attrs();
    let order = org.topo_order();
    let n_threads = n_threads.max(1).min(n.max(1));
    let mut out = vec![0.0f64; n];
    if n == 0 {
        return out;
    }
    let chunk = n.div_ceil(n_threads);
    let chunks: Vec<(usize, &mut [f64])> = out.chunks_mut(chunk).enumerate().collect();
    std::thread::scope(|scope| {
        for (ci, slot) in chunks {
            let order = &order;
            let start = ci * chunk;
            scope.spawn(move || {
                let mut reach = vec![0.0f64; org.n_slots()];
                let mut weights: Vec<f64> = Vec::new();
                for (i, o) in slot.iter_mut().enumerate() {
                    let attr = (start + i) as u32;
                    let a = ctx.attr(attr);
                    let unit = &a.unit_topic;
                    reach.iter_mut().for_each(|r| *r = 0.0);
                    reach[org.root().index()] = 1.0;
                    for &s in order {
                        let st = org.state(s);
                        if st.children.is_empty() || reach[s.index()] == 0.0 {
                            continue;
                        }
                        transition_weights(org, nav.gamma, s, unit, &mut weights);
                        let r = reach[s.index()];
                        for (&c, &w) in st.children.iter().zip(weights.iter()) {
                            reach[c.index()] += r * w;
                        }
                    }
                    *o = a
                        .tags
                        .iter()
                        .map(|&t| {
                            reach[org.tag_state(t).index()] * final_hop(ctx, nav.gamma, t, attr)
                        })
                        .sum();
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::Representatives;
    use crate::init::{clustering_org, flat_org};
    use crate::ops;
    use dln_synth::TagCloudConfig;

    fn setup() -> (OrgContext, Organization) {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        (ctx, org)
    }

    fn evaluator(ctx: &OrgContext, org: &Organization) -> Evaluator {
        let reps = Representatives::exact(ctx);
        Evaluator::new(ctx, org, NavConfig::default(), &reps)
    }

    #[test]
    fn reach_probabilities_are_a_distribution_over_levels() {
        let (ctx, org) = setup();
        let ev = evaluator(&ctx, &org);
        // For each query, the reach of the root is 1 and the total reach
        // of the tag states is ≤ 1 (paths can only lose mass at splits...
        // actually in a tree it is exactly 1).
        for (qi, _) in ev.queries.iter().enumerate() {
            let reach = &ev.reach[qi];
            assert!((reach[org.root().index()] - 1.0).abs() < 1e-12);
            let leaf_sum: f64 = org
                .tag_states()
                .iter()
                .map(|ts| reach[ts.index()])
                .sum();
            assert!(
                (leaf_sum - 1.0).abs() < 1e-6,
                "tree mass conservation: {leaf_sum}"
            );
        }
    }

    #[test]
    fn discovery_probs_are_probabilities() {
        let (ctx, org) = setup();
        let ev = evaluator(&ctx, &org);
        for a in 0..ctx.n_attrs() as u32 {
            let d = ev.attr_discovery(a);
            assert!((0.0..=1.0).contains(&d), "disc {d} out of range");
        }
        for t in 0..ctx.n_tables() as u32 {
            let p = ev.table_discovery(t);
            assert!((0.0..=1.0).contains(&p));
        }
        let eff = ev.effectiveness();
        assert!(eff > 0.0 && eff < 1.0, "effectiveness {eff}");
    }

    #[test]
    fn effectiveness_is_mean_of_table_probs() {
        let (ctx, org) = setup();
        let ev = evaluator(&ctx, &org);
        let mean: f64 = (0..ctx.n_tables() as u32)
            .map(|t| ev.table_discovery(t))
            .sum::<f64>()
            / ctx.n_tables() as f64;
        assert!((ev.effectiveness() - mean).abs() < 1e-12);
    }

    #[test]
    fn clustering_beats_flat_baseline() {
        // The core claim of Figure 2(a)'s first comparison.
        let (ctx, _) = setup();
        let flat = flat_org(&ctx);
        let clus = clustering_org(&ctx);
        let ev_flat = evaluator(&ctx, &flat);
        let ev_clus = evaluator(&ctx, &clus);
        assert!(
            ev_clus.effectiveness() > ev_flat.effectiveness(),
            "clustering {} must beat flat {}",
            ev_clus.effectiveness(),
            ev_flat.effectiveness()
        );
    }

    #[test]
    fn own_attribute_has_high_final_hop() {
        let (ctx, _) = setup();
        // For a TagCloud attribute, the final hop compares it against its
        // tag siblings; it must be at least the uniform share.
        for a in (0..ctx.n_attrs() as u32).step_by(17) {
            let t = ctx.attr(a).tags[0];
            let pop = ctx.tag(t).attrs.len();
            let hop = final_hop(&ctx, 20.0, t, a);
            assert!(
                hop >= 1.0 / (pop as f64) - 1e-9,
                "hop {hop} below uniform 1/{pop}"
            );
        }
    }

    #[test]
    fn incremental_delta_matches_full_recompute() {
        let (ctx, mut org) = setup();
        let mut ev = evaluator(&ctx, &org);
        let reach = ev.reachability();
        // Apply an ADD_PARENT and compare incremental vs full evaluation.
        let s = org.tag_state(3);
        let out = ops::try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (_undo, stats) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
        assert!(stats.states_visited > 0);
        let eff_incremental = ev.effectiveness();
        let ev_full = evaluator(&ctx, &org);
        assert!(
            (eff_incremental - ev_full.effectiveness()).abs() < 1e-9,
            "incremental {} vs full {}",
            eff_incremental,
            ev_full.effectiveness()
        );
        // Per-attribute agreement.
        for a in 0..ctx.n_attrs() as u32 {
            assert!((ev.attr_discovery(a) - ev_full.attr_discovery(a)).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_rollback_restores_evaluator() {
        let (ctx, mut org) = setup();
        let mut ev = evaluator(&ctx, &org);
        let eff_before = ev.effectiveness();
        let disc_before: Vec<f64> = (0..ctx.n_attrs() as u32)
            .map(|a| ev.attr_discovery(a))
            .collect();
        let reach = ev.reachability();
        let s = org.tag_state(5);
        let out = ops::try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (undo, _) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
        ev.rollback(undo);
        ops::undo(&mut org, &ctx, out);
        assert!((ev.effectiveness() - eff_before).abs() < 1e-12);
        for (a, &d) in disc_before.iter().enumerate() {
            assert!((ev.attr_discovery(a as u32) - d).abs() < 1e-12);
        }
        // And the evaluator still agrees with a fresh one.
        let fresh = evaluator(&ctx, &org);
        assert!((ev.effectiveness() - fresh.effectiveness()).abs() < 1e-9);
    }

    #[test]
    fn incremental_matches_after_delete_parent() {
        let (ctx, mut org) = setup();
        let mut ev = evaluator(&ctx, &org);
        let reach = ev.reachability();
        let s = (0..ctx.n_tags() as u32)
            .map(|t| org.tag_state(t))
            .find(|&ts| {
                org.state(ts)
                    .parents
                    .iter()
                    .any(|&p| p != org.root() && org.state(p).tag.is_none())
            })
            .expect("deep tag state");
        let out = ops::try_delete_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (_undo, stats) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
        assert!(stats.states_visited > 0);
        let ev_full = evaluator(&ctx, &org);
        assert!(
            (ev.effectiveness() - ev_full.effectiveness()).abs() < 1e-9,
            "incremental {} vs full {}",
            ev.effectiveness(),
            ev_full.effectiveness()
        );
    }

    #[test]
    fn affected_subgraph_is_a_strict_subset() {
        // Pruning claim of Figure 3: a local change re-evaluates fewer than
        // all states.
        let (ctx, mut org) = setup();
        let mut ev = evaluator(&ctx, &org);
        let reach = ev.reachability();
        let s = org.tag_state(1);
        let out = ops::try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let (_undo, stats) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
        assert!(
            stats.states_visited < org.n_alive(),
            "visited {} of {} states",
            stats.states_visited,
            org.n_alive()
        );
    }

    #[test]
    fn exact_discovery_probs_match_evaluator_with_exact_reps() {
        let (ctx, org) = setup();
        let ev = evaluator(&ctx, &org);
        let exact = discovery_probs(&ctx, &org, NavConfig::default(), 2);
        for a in 0..ctx.n_attrs() as u32 {
            assert!(
                (exact[a as usize] - ev.attr_discovery(a)).abs() < 1e-9,
                "attr {a}: {} vs {}",
                exact[a as usize],
                ev.attr_discovery(a)
            );
        }
    }

    #[test]
    fn representative_approximation_is_close() {
        let (ctx, org) = setup();
        let exact_ev = evaluator(&ctx, &org);
        let approx_reps = Representatives::kmedoids(&ctx, 0.2, 7);
        let approx_ev = Evaluator::new(&ctx, &org, NavConfig::default(), &approx_reps);
        let (e, a) = (exact_ev.effectiveness(), approx_ev.effectiveness());
        assert!(
            (e - a).abs() / e < 0.5,
            "approx effectiveness {a} far from exact {e}"
        );
    }

    #[test]
    #[should_panic(expected = "gamma must be strictly positive")]
    fn non_positive_gamma_panics() {
        let (ctx, org) = setup();
        let reps = Representatives::exact(&ctx);
        Evaluator::new(&ctx, &org, NavConfig { gamma: 0.0 }, &reps);
    }
}
