//! Shared persistence plumbing, re-exported from [`dln_persist`].
//!
//! The FNV-1a checksum framing, atomic publish (`<path>.tmp` + fsync +
//! rename with `.prev` rotation), generation-fallback loading, and the
//! little-endian [`Writer`]/[`Reader`] codecs originally lived here; the
//! CDC change log in `dln-lake` needs the identical torn-write story, so
//! the implementation moved to the dependency-root `dln-persist` crate.
//! Existing `crate::persist::*` users are source-compatible through this
//! re-export.

pub use dln_persist::*;
