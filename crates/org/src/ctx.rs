//! Per-organization universes with dense local ids.
//!
//! A (multi-dimensional) organization is built over a *group* of tags
//! (§2.5): one group per dimension, or a single group holding every tag for
//! a 1-dimensional organization. The [`OrgContext`] snapshots everything an
//! organization needs from the lake — the group's tags, the attributes
//! associated with them, and the tables those attributes belong to — with
//! dense `u32` local ids so states can use bitsets.
//!
//! Only attributes with a non-empty topic vector participate (the paper's
//! Socrata lake counts "attributes containing words that have a word
//! embedding", §4.1); a value-less attribute can never be chosen by the
//! similarity-driven navigation model anyway.

use std::collections::HashMap;

use dln_embed::TopicAccumulator;
use dln_lake::{AttrId, DataLake, TableId, TagId};

/// A tag in an organization's local universe.
#[derive(Clone, Debug)]
pub struct LocalTag {
    /// The lake-global tag id.
    pub global: TagId,
    /// Tag label (copied from the lake for self-contained display).
    pub label: String,
    /// `data(t)`: the tag's attributes, as local attr ids.
    pub attrs: Vec<u32>,
    /// Unit-normalized topic vector of the tag.
    pub unit_topic: Vec<f32>,
}

/// An attribute in an organization's local universe.
#[derive(Clone, Debug)]
pub struct LocalAttr {
    /// The lake-global attribute id.
    pub global: AttrId,
    /// Local table index.
    pub table: u32,
    /// Local ids of the group tags this attribute is associated with.
    pub tags: Vec<u32>,
    /// Unit-normalized topic vector.
    pub unit_topic: Vec<f32>,
    /// Topic accumulator (sum + count), used to build state topic vectors.
    pub topic: TopicAccumulator,
}

/// A table in an organization's local universe.
#[derive(Clone, Debug)]
pub struct LocalTable {
    /// The lake-global table id.
    pub global: TableId,
    /// Local ids of the table's attributes that are in this context.
    pub attrs: Vec<u32>,
}

/// The snapshot universe an organization is built over.
#[derive(Clone, Debug)]
pub struct OrgContext {
    dim: usize,
    tags: Vec<LocalTag>,
    attrs: Vec<LocalAttr>,
    tables: Vec<LocalTable>,
    /// Row-major `n_attrs × dim` matrix of attribute unit topics — the
    /// contiguous mirror of `attrs[a].unit_topic`, so query-unit scans and
    /// final-hop softmaxes stream over adjacent memory.
    attr_units: Vec<f32>,
    attr_of_global: HashMap<AttrId, u32>,
    tag_of_global: HashMap<TagId, u32>,
}

impl OrgContext {
    /// A context over *all* tags of the lake (1-dimensional organization).
    pub fn full(lake: &DataLake) -> OrgContext {
        let tags: Vec<TagId> = lake.tag_ids().collect();
        Self::for_tag_group(lake, &tags)
    }

    /// A context over a tag group (one dimension of a multi-dimensional
    /// organization, §2.5). Attributes are included iff they carry at least
    /// one group tag and have a non-empty topic vector.
    pub fn for_tag_group(lake: &DataLake, group: &[TagId]) -> OrgContext {
        let mut tag_of_global: HashMap<TagId, u32> = HashMap::with_capacity(group.len());
        for &tg in group {
            let next = tag_of_global.len() as u32;
            tag_of_global.entry(tg).or_insert(next);
        }
        // Collect attributes with ≥1 group tag and a usable topic vector.
        // The admission test (topic present + group-tag projection) is a
        // pure read per attribute, so it fans out over the worker pool; the
        // id-assigning assembly below then walks the results in lake order,
        // so local ids are identical at any thread count.
        let lake_attrs: Vec<AttrId> = lake.attr_ids().collect();
        let admitted: Vec<Option<Vec<u32>>> = rayon::par_map(lake_attrs.len(), |i| {
            let aid = lake_attrs[i];
            if !lake.attr(aid).has_topic() {
                return None;
            }
            let local_tags: Vec<u32> = lake
                .attr_tags(aid)
                .iter()
                .filter_map(|tg| tag_of_global.get(tg).copied())
                .collect();
            if local_tags.is_empty() {
                None
            } else {
                Some(local_tags)
            }
        });
        let mut attr_of_global: HashMap<AttrId, u32> = HashMap::new();
        let mut attrs: Vec<LocalAttr> = Vec::new();
        let mut table_of_global: HashMap<TableId, u32> = HashMap::new();
        let mut tables: Vec<LocalTable> = Vec::new();
        for (&aid, local_tags) in lake_attrs.iter().zip(admitted) {
            let Some(local_tags) = local_tags else {
                continue;
            };
            let a = lake.attr(aid);
            let local_table = *table_of_global.entry(a.table).or_insert_with(|| {
                tables.push(LocalTable {
                    global: a.table,
                    attrs: Vec::new(),
                });
                (tables.len() - 1) as u32
            });
            let local = attrs.len() as u32;
            attr_of_global.insert(aid, local);
            tables[local_table as usize].attrs.push(local);
            attrs.push(LocalAttr {
                global: aid,
                table: local_table,
                tags: local_tags,
                unit_topic: a.unit_topic.clone(),
                topic: a.topic.clone(),
            });
        }
        // Tag populations restricted to included attributes.
        let mut tag_attrs: Vec<Vec<u32>> = vec![Vec::new(); tag_of_global.len()];
        for (local, a) in attrs.iter().enumerate() {
            for &t in &a.tags {
                tag_attrs[t as usize].push(local as u32);
            }
        }
        let mut tags: Vec<Option<LocalTag>> = vec![None; tag_of_global.len()];
        for (&global, &local) in &tag_of_global {
            let lt = lake.tag(global);
            tags[local as usize] = Some(LocalTag {
                global,
                label: lt.label.clone(),
                attrs: std::mem::take(&mut tag_attrs[local as usize]),
                unit_topic: lt.unit_topic.clone(),
            });
        }
        let tags: Vec<LocalTag> = tags
            .into_iter()
            .map(|t| t.unwrap_or_else(|| unreachable!("every local tag slot is filled above")))
            .collect();
        let mut attr_units = Vec::with_capacity(attrs.len() * lake.dim());
        for a in &attrs {
            attr_units.extend_from_slice(&a.unit_topic);
        }
        OrgContext {
            dim: lake.dim(),
            tags,
            attrs,
            tables,
            attr_units,
            attr_of_global,
            tag_of_global,
        }
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The group's tags.
    #[inline]
    pub fn tags(&self) -> &[LocalTag] {
        &self.tags
    }

    /// The group's attributes.
    #[inline]
    pub fn attrs(&self) -> &[LocalAttr] {
        &self.attrs
    }

    /// Tables with at least one attribute in this context.
    #[inline]
    pub fn tables(&self) -> &[LocalTable] {
        &self.tables
    }

    /// Number of tags.
    #[inline]
    pub fn n_tags(&self) -> usize {
        self.tags.len()
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Number of tables.
    #[inline]
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// A tag by local id.
    #[inline]
    pub fn tag(&self, local: u32) -> &LocalTag {
        &self.tags[local as usize]
    }

    /// An attribute by local id.
    #[inline]
    pub fn attr(&self, local: u32) -> &LocalAttr {
        &self.attrs[local as usize]
    }

    /// The unit topic of attribute `local` as a row of the contiguous
    /// attribute-unit matrix (identical values to
    /// `attr(local).unit_topic`, cache-friendly when scanning populations).
    #[inline]
    pub fn attr_unit(&self, local: u32) -> &[f32] {
        let i = local as usize * self.dim;
        &self.attr_units[i..i + self.dim]
    }

    /// Local id of a lake-global attribute, if present in this context.
    pub fn local_attr(&self, global: AttrId) -> Option<u32> {
        self.attr_of_global.get(&global).copied()
    }

    /// Local id of a lake-global tag, if present in this context.
    pub fn local_tag(&self, global: TagId) -> Option<u32> {
        self.tag_of_global.get(&global).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_synth::TagCloudConfig;

    fn small_ctx() -> (dln_lake::DataLake, OrgContext) {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        (bench.lake, ctx)
    }

    #[test]
    fn full_context_covers_lake() {
        let (lake, ctx) = small_ctx();
        assert_eq!(ctx.n_tags(), lake.n_tags());
        assert_eq!(
            ctx.n_attrs(),
            lake.n_attrs(),
            "TagCloud attrs all have topics"
        );
        assert_eq!(ctx.n_tables(), lake.n_tables());
        assert_eq!(ctx.dim(), lake.dim());
    }

    #[test]
    fn local_ids_roundtrip() {
        let (lake, ctx) = small_ctx();
        for aid in lake.attr_ids() {
            let local = ctx.local_attr(aid).expect("attr present");
            assert_eq!(ctx.attr(local).global, aid);
        }
        for tg in lake.tag_ids() {
            let local = ctx.local_tag(tg).expect("tag present");
            assert_eq!(ctx.tag(local).global, tg);
        }
    }

    #[test]
    fn attr_unit_matrix_mirrors_unit_topics() {
        let (_lake, ctx) = small_ctx();
        for a in 0..ctx.n_attrs() as u32 {
            assert_eq!(ctx.attr_unit(a), ctx.attr(a).unit_topic.as_slice());
        }
    }

    #[test]
    fn tag_populations_match_lake() {
        let (lake, ctx) = small_ctx();
        for t in 0..ctx.n_tags() as u32 {
            let lt = ctx.tag(t);
            assert_eq!(lt.attrs.len(), lake.tag(lt.global).attrs.len());
        }
    }

    #[test]
    fn attr_tags_are_restricted_to_group() {
        let bench = TagCloudConfig::small().generate();
        let lake = &bench.lake;
        // Take a group of the first 5 tags only.
        let group: Vec<_> = lake.tag_ids().take(5).collect();
        let ctx = OrgContext::for_tag_group(lake, &group);
        assert_eq!(ctx.n_tags(), 5);
        assert!(ctx.n_attrs() < lake.n_attrs());
        for a in ctx.attrs() {
            assert!(!a.tags.is_empty());
            for &t in &a.tags {
                assert!((t as usize) < 5);
            }
        }
    }

    #[test]
    fn tables_link_back_to_attrs() {
        let (_lake, ctx) = small_ctx();
        let mut seen = 0usize;
        for (ti, table) in ctx.tables().iter().enumerate() {
            for &a in &table.attrs {
                assert_eq!(ctx.attr(a).table as usize, ti);
                seen += 1;
            }
        }
        assert_eq!(seen, ctx.n_attrs());
    }

    #[test]
    fn duplicate_tags_in_group_are_deduplicated() {
        let bench = TagCloudConfig::small().generate();
        let lake = &bench.lake;
        let first = lake.tag_ids().next().unwrap();
        let ctx = OrgContext::for_tag_group(lake, &[first, first]);
        assert_eq!(ctx.n_tags(), 1);
    }

    #[test]
    fn empty_group_is_empty_context() {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::for_tag_group(&bench.lake, &[]);
        assert_eq!(ctx.n_tags(), 0);
        assert_eq!(ctx.n_attrs(), 0);
        assert_eq!(ctx.n_tables(), 0);
    }
}
