//! Sharded multi-root organization construction.
//!
//! One dimension's local search is the construction bottleneck: its cost
//! grows superlinearly in the tag count (every proposal re-evaluates an
//! affected subgraph against every representative query). Sharding splits
//! the dimension's tags into [`SearchConfig::shards`] embedding clusters
//! (k-medoids over tag unit topics, the same partitioner the §2.5
//! multi-dimensional build uses), optimizes one *shard organization* per
//! cluster — fully in parallel, each on its own deterministic RNG
//! substream — and stitches the shard roots back together under a single
//! top-level **router** state, producing one ordinary [`Organization`]
//! over the whole dimension.
//!
//! The router is simply the stitched organization's root: its tag set is
//! the full dimension (so the inclusion property holds toward every shard
//! root), and its outgoing transition probabilities come from the same
//! Eq 1 softmax over child topic vectors that governs every other state —
//! no special casing anywhere downstream. The [`crate::eval`]
//! reachability model, [`crate::navigate`] walks, and the serving layer's
//! snapshot/replay machinery all consume the stitched DAG as-is.
//!
//! Because Eq 1 splits a state's outgoing mass across all of its
//! children, the router does not adopt the shard roots directly (a k-way
//! fan-out would dilute every shard's reach roughly k-fold): the stitch
//! agglomeratively pairs shard roots by topic similarity into a binary
//! **routing tier** of junction states, the same low fan-out shape the
//! agglomerative initializer and the local search themselves produce.
//!
//! Determinism contract:
//!
//! * `ShardPolicy::Fixed(1)` (or a partition that collapses to one
//!   cluster) is the ordinary [`clustering_org`](init::clustering_org) +
//!   [`optimize`](search::optimize) path, reproduced **bit-for-bit**.
//! * `ShardPolicy::Auto` resolves the count from the knee of the
//!   k-medoids cost spectrum over the dimension's tag topics
//!   ([`auto_partition_k`], seeded from the same derived partition seed),
//!   so the decision is deterministic in `(lake, group, cfg.seed)` and
//!   invariant to the worker count like everything else.
//! * For any shard count, every shard's walk is seeded by
//!   [`derive_shard_seed`] — a splitmix64 substream of the configured
//!   seed indexed by shard position — so the stitched result is a pure
//!   function of `(lake, group, cfg)` and **invariant to the worker
//!   count**: shards are distributed over `min(n_shards, worker)` scope
//!   threads, but each shard's construction never depends on which thread
//!   ran it.
//!
//! See DESIGN.md §5e for the partitioning rationale, the router
//! reachability model, and the full determinism argument.

use dln_cluster::{auto_partition_k, partition_indices, CosinePoints, ShardSpectrum};
use dln_embed::dot;
use dln_lake::{DataLake, TagId};

use crate::bitset::BitSet;
use crate::builder::BuiltOrganization;
use crate::ctx::OrgContext;
use crate::graph::{Organization, StateId};
use crate::init;
use crate::search::{self, SearchConfig, SearchStats, ShardPolicy};

/// Largest shard count [`ShardPolicy::Auto`] will consider — the top of the
/// `auto_partition_k` candidate ladder (further clamped to the dimension's
/// tag count).
///
/// Sharding trades stitched effectiveness for construction speed: every
/// extra shard boundary loses cross-shard structure, and at the fixed-4
/// operating point the loss is already ~5% on the bench lake
/// (BENCH_shard.json). `Auto` exists to shard *less* than the fixed
/// default when the tag spectrum doesn't justify it — never more — so its
/// candidate ladder stops at the fixed-4 baseline. That makes the policy's
/// guarantee structural: the knee is always ≤ 4, and the auto build can
/// only recover effectiveness relative to fixed-4, not fall below it by
/// oversharding a spectrum whose elbow sits further out.
pub const AUTO_SHARD_MAX: usize = 4;

/// A stitched, sharded organization over one tag group.
pub struct ShardedBuild {
    /// The stitched organization with its full-group context — a perfectly
    /// ordinary [`BuiltOrganization`] whose root is the router.
    /// `search_stats` is the whole-group run for the unsharded (`shards =
    /// 1`) path and `None` for a stitched build (per-shard runs live in
    /// [`ShardedBuild::shard_stats`]).
    pub built: BuiltOrganization,
    /// The tag partition, in shard order (lake-global ids, ascending
    /// within each shard).
    pub shard_tags: Vec<Vec<TagId>>,
    /// Per-shard local-search statistics; `None` for singleton-tag shards,
    /// which need no search.
    pub shard_stats: Vec<Option<SearchStats>>,
    /// The stitched state that roots each shard (reachable from the
    /// router through the routing tier; for singleton shards this is the
    /// tag state itself).
    pub shard_roots: Vec<StateId>,
    /// The k-medoids cost spectrum behind a [`ShardPolicy::Auto`] decision
    /// (`None` under a fixed policy) — kept so benches and logs can show
    /// *why* the count was picked.
    pub shard_spectrum: Option<ShardSpectrum>,
}

impl ShardedBuild {
    /// Number of shards (1 for the unsharded path).
    pub fn n_shards(&self) -> usize {
        self.shard_tags.len()
    }

    /// Exact effectiveness (Eq 6) of the stitched organization.
    pub fn effectiveness(&self) -> f64 {
        self.built.effectiveness()
    }

    /// Wall-clock construction time under the parallel schedule: the
    /// maximum over shard searches (the same reporting convention as
    /// [`crate::multidim::MultiDimOrganization::parallel_construction_time`]).
    pub fn construction_time(&self) -> std::time::Duration {
        self.shard_stats
            .iter()
            .flatten()
            .map(|s| s.duration)
            .max()
            .unwrap_or_default()
    }

    /// Total search proposals across all shards.
    pub fn total_iterations(&self) -> usize {
        self.shard_stats
            .iter()
            .flatten()
            .map(|s| s.iterations)
            .sum()
    }
}

/// splitmix64 — the seed-stream mixer (Steele et al., OOPSLA 2014).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of shard `shard`'s local search: an independent splitmix64
/// substream of the configured seed, so per-shard walks are deterministic
/// in `(cfg.seed, shard index)` and nothing else — in particular, not in
/// the worker count or the shard-to-thread assignment.
pub fn derive_shard_seed(seed: u64, shard: usize) -> u64 {
    splitmix64(seed ^ splitmix64(0x5AA4_D5EE ^ (shard as u64)))
}

/// The k-medoids seed of the tag partition, derived from the search seed
/// so the whole construction remains a function of one configured seed.
fn partition_seed(seed: u64) -> u64 {
    splitmix64(seed ^ 0x0005_16AD_C0DE)
}

/// One shard's construction output.
enum ShardOutput {
    /// A singleton-tag shard: no interior structure to build — the router
    /// links straight to the tag state.
    Leaf(TagId),
    /// An optimized shard organization over its restricted context.
    Org(Box<(OrgContext, Organization, SearchStats)>),
}

/// Sharded construction over *all* tags of the lake (a 1-dimensional
/// organization). `cfg.shards` controls the split; `Fixed(1)` reproduces
/// [`crate::builder::OrganizerBuilder::build_optimized`] bit-for-bit.
pub fn build_sharded(lake: &DataLake, cfg: &SearchConfig) -> ShardedBuild {
    let group: Vec<TagId> = lake.tag_ids().collect();
    build_sharded_group(lake, &group, cfg)
}

/// Sharded construction over one tag group (one dimension of a §2.5
/// multi-dimensional organization).
///
/// The shard count comes from [`SearchConfig::shards`]: a fixed count is
/// clamped to the tag count; [`ShardPolicy::Auto`] sweeps the k-medoids
/// cost spectrum over the group's tag topics (candidates up to
/// [`AUTO_SHARD_MAX`], same derived seed as the partition itself) and
/// splits at its knee — including deciding *not* to split when the curve
/// says the tags don't decompose. The spectrum is kept on the result.
pub fn build_sharded_group(lake: &DataLake, group: &[TagId], cfg: &SearchConfig) -> ShardedBuild {
    let ctx = OrgContext::for_tag_group(lake, group);
    let n_tags = ctx.n_tags();
    if n_tags <= 1 || cfg.shards == ShardPolicy::Fixed(1) || cfg.shards == ShardPolicy::Fixed(0) {
        return build_unsharded(ctx, cfg, None);
    }
    let points = CosinePoints::new(ctx.tags().iter().map(|t| t.unit_topic.as_slice()).collect());
    let (k, spectrum) = match cfg.shards {
        ShardPolicy::Fixed(k) => (k.min(n_tags), None),
        ShardPolicy::Auto => {
            let spec = auto_partition_k(
                &points,
                AUTO_SHARD_MAX.min(n_tags),
                partition_seed(cfg.seed),
            );
            (spec.knee, Some(spec))
        }
    };
    if k <= 1 {
        return build_unsharded(ctx, cfg, spectrum);
    }
    // Partition the group's tags by embedding cluster.
    let groups = partition_indices(&points, k, partition_seed(cfg.seed));
    if groups.len() <= 1 {
        return build_unsharded(ctx, cfg, spectrum);
    }
    let shard_tags: Vec<Vec<TagId>> = groups
        .iter()
        .map(|g| g.iter().map(|&t| ctx.tag(t as u32).global).collect())
        .collect();
    let n = shard_tags.len();

    // Per-shard construction, distributed over min(n, workers) scope
    // threads. Each worker runs its shards inline (no nested fan-out), so
    // `DLN_THREADS` governs the concurrency while every shard's result
    // stays a pure function of (lake, shard tags, derived seed) — the
    // chunk-to-thread assignment is invisible in the output. Singleton
    // shards are resolved up front: a one-tag universe has no structure to
    // search.
    let mut outputs: Vec<Option<ShardOutput>> = Vec::new();
    outputs.resize_with(n, || None);
    for (i, tags) in shard_tags.iter().enumerate() {
        if let [only] = tags.as_slice() {
            outputs[i] = Some(ShardOutput::Leaf(*only));
        }
    }
    let workers = n.min(rayon::current_num_threads()).max(1);
    let per = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, chunk) in outputs.chunks_mut(per).enumerate() {
            let base = ci * per;
            let shard_tags = &shard_tags;
            scope.spawn(move || {
                rayon::run_inline(|| {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        if slot.is_none() {
                            *slot = Some(build_one_shard(lake, shard_tags, base + off, cfg));
                        }
                    }
                });
            });
        }
    });
    let outputs: Vec<ShardOutput> = outputs
        .into_iter()
        .map(|o| o.unwrap_or_else(|| unreachable!("every shard slot is filled above")))
        .collect();

    // Stitch the shard roots under the router's routing tier.
    let (organization, shard_roots) = stitch(&ctx, &outputs);
    let shard_stats: Vec<Option<SearchStats>> = outputs
        .iter()
        .map(|o| match o {
            ShardOutput::Leaf(_) => None,
            ShardOutput::Org(b) => Some(b.2.clone()),
        })
        .collect();
    ShardedBuild {
        built: BuiltOrganization {
            ctx,
            organization,
            nav: cfg.nav,
            search_stats: None,
        },
        shard_tags,
        shard_stats,
        shard_roots,
        shard_spectrum: spectrum,
    }
}

/// The single-shard path: exactly [`init::clustering_org`] +
/// [`search::optimize`] over the full group context, bit-for-bit (the
/// `shards` knob itself is invisible to the walk). `spectrum` carries the
/// cost curve when an [`ShardPolicy::Auto`] sweep concluded "don't split".
fn build_unsharded(
    ctx: OrgContext,
    cfg: &SearchConfig,
    spectrum: Option<ShardSpectrum>,
) -> ShardedBuild {
    let mut organization = init::clustering_org(&ctx);
    let stats = search::optimize(&ctx, &mut organization, cfg);
    let root = organization.root();
    let all_tags: Vec<TagId> = ctx.tags().iter().map(|t| t.global).collect();
    ShardedBuild {
        built: BuiltOrganization {
            ctx,
            organization,
            nav: cfg.nav,
            search_stats: Some(stats.clone()),
        },
        shard_tags: vec![all_tags],
        shard_stats: vec![Some(stats)],
        shard_roots: vec![root],
        shard_spectrum: spectrum,
    }
}

/// Optimize shard `i` on its restricted context with its derived seed.
/// Checkpointing is disabled per shard — shards would race on one
/// checkpoint path; crash safety for sharded builds is simply re-running
/// the (much cheaper) shards.
fn build_one_shard(
    lake: &DataLake,
    shard_tags: &[Vec<TagId>],
    i: usize,
    cfg: &SearchConfig,
) -> ShardOutput {
    let shard_cfg = SearchConfig {
        seed: derive_shard_seed(cfg.seed, i),
        shards: ShardPolicy::Fixed(1),
        checkpoint: None,
        ..cfg.clone()
    };
    let sctx = OrgContext::for_tag_group(lake, &shard_tags[i]);
    let mut org = init::clustering_org(&sctx);
    let stats = search::optimize(&sctx, &mut org, &shard_cfg);
    ShardOutput::Org(Box::new((sctx, org, stats)))
}

/// Graft every shard organization into one DAG over the full-group
/// context, rooted at the router.
///
/// [`Organization::with_tag_states`] already provides the router (the
/// root, covering every group tag) and one canonical tag state per tag.
/// Each shard's alive, reachable states are then copied in topological
/// order — tag states map onto the canonical ones, interior states are
/// re-derived from their (translated) tag sets, so their attribute
/// unions and topic vectors are recomputed against the full context —
/// followed by the shard's edges; the shard roots are finally paired
/// into the binary routing tier hanging off the router (see the module
/// docs for why the router must not adopt them directly).
/// Per-tag attribute populations are identical in the shard and
/// full-group contexts (admission only requires one group tag), so the
/// copied states are the *same* states, and inclusion holds everywhere:
/// along copied edges because the shard organizations validate, and at
/// the router because its tag set is the whole group.
fn stitch(ctx: &OrgContext, outputs: &[ShardOutput]) -> (Organization, Vec<StateId>) {
    let mut stitched = Organization::with_tag_states(ctx);
    let router = stitched.root();
    let mut shard_roots = Vec::with_capacity(outputs.len());
    let to_full = |sctx: &OrgContext, t_s: u32| -> u32 {
        ctx.local_tag(sctx.tag(t_s).global)
            .unwrap_or_else(|| unreachable!("shard tags are drawn from the full group"))
    };
    for output in outputs {
        match output {
            ShardOutput::Leaf(tag) => {
                let t = ctx
                    .local_tag(*tag)
                    .unwrap_or_else(|| unreachable!("shard tags are drawn from the full group"));
                shard_roots.push(stitched.tag_state(t));
            }
            ShardOutput::Org(boxed) => {
                let (sctx, sorg, _) = boxed.as_ref();
                let order: Vec<StateId> = sorg.topo_order().to_vec();
                let mut map: Vec<Option<StateId>> = vec![None; sorg.n_slots()];
                for &sid in &order {
                    let st = sorg.state(sid);
                    let mapped = match st.tag {
                        Some(t_s) => stitched.tag_state(to_full(sctx, t_s)),
                        None => {
                            let tags = BitSet::from_iter_with_capacity(
                                ctx.n_tags(),
                                st.tags.iter().map(|t_s| to_full(sctx, t_s)),
                            );
                            stitched.add_state(ctx, tags, None)
                        }
                    };
                    map[sid.index()] = Some(mapped);
                }
                let mapped = |sid: StateId| {
                    map[sid.index()]
                        .unwrap_or_else(|| unreachable!("topo order covers every copied state"))
                };
                for &sid in &order {
                    for &c in &sorg.state(sid).children {
                        stitched.add_edge(mapped(sid), mapped(c));
                    }
                }
                shard_roots.push(mapped(sorg.root()));
            }
        }
    }

    // Routing tier: agglomeratively pair the shard roots by topic
    // similarity until at most two remain, creating one interior
    // "junction" state per merge, and hang that frontier off the router.
    // Eq 1 splits a state's outgoing mass across *all* its children, so a
    // k-way router would dilute every shard's reach roughly k-fold; a
    // binary routing tier keeps the fan-out the navigation model rewards
    // (it is the same shape the agglomerative initializer and the local
    // search themselves produce). The merge order is a deterministic
    // function of the shard-root topics alone.
    let mut frontier: Vec<StateId> = shard_roots.clone();
    while frontier.len() > 2 {
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f32::NEG_INFINITY);
        for i in 0..frontier.len() {
            for j in (i + 1)..frontier.len() {
                let sim = dot(
                    &stitched.state(frontier[i]).unit_topic,
                    &stitched.state(frontier[j]).unit_topic,
                );
                if sim > best {
                    (bi, bj, best) = (i, j, sim);
                }
            }
        }
        let (a, b) = (frontier[bi], frontier[bj]);
        let mut tags = stitched.state(a).tags.clone();
        tags.union_with(&stitched.state(b).tags);
        let junction = stitched.add_state(ctx, tags, None);
        stitched.add_edge(junction, a);
        stitched.add_edge(junction, b);
        frontier.remove(bj);
        frontier[bi] = junction;
    }
    for &top in &frontier {
        stitched.add_edge(router, top);
    }
    (stitched, shard_roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::Representatives;
    use crate::builder::OrganizerBuilder;
    use crate::eval::Evaluator;
    use dln_synth::TagCloudConfig;

    fn cfg(shards: usize, max_iters: usize) -> SearchConfig {
        policy_cfg(ShardPolicy::Fixed(shards), max_iters)
    }

    fn policy_cfg(shards: ShardPolicy, max_iters: usize) -> SearchConfig {
        SearchConfig {
            shards,
            max_iters,
            deadline: None,
            checkpoint: None,
            ..Default::default()
        }
    }

    #[test]
    fn one_shard_reproduces_build_optimized_bit_for_bit() {
        let bench = TagCloudConfig::small().generate();
        let c = cfg(1, 150);
        let plain = OrganizerBuilder::new(&bench.lake)
            .search_config(c.clone())
            .build_optimized();
        let sharded = build_sharded(&bench.lake, &c);
        assert_eq!(sharded.n_shards(), 1);
        assert_eq!(
            sharded.built.organization.fingerprint(),
            plain.organization.fingerprint(),
            "shards = 1 must be today's path, bit for bit"
        );
    }

    #[test]
    fn stitched_organization_validates_and_covers_all_tags() {
        let bench = TagCloudConfig::small().generate();
        let sharded = build_sharded(&bench.lake, &cfg(4, 120));
        assert!(sharded.n_shards() > 1, "small TagCloud splits");
        let org = &sharded.built.organization;
        let ctx = &sharded.built.ctx;
        org.validate(ctx)
            .expect("stitched org is structurally valid");
        assert_eq!(ctx.n_tags(), bench.lake.n_tags());
        // The partition covers every tag exactly once.
        let total: usize = sharded.shard_tags.iter().map(Vec::len).sum();
        assert_eq!(total, bench.lake.n_tags());
        // The routing tier keeps the router binary, and every shard root
        // is reachable from the router through it.
        assert!(org.state(org.root()).children.len() <= 2);
        let mut reachable = std::collections::HashSet::new();
        let mut stack = vec![org.root()];
        while let Some(s) = stack.pop() {
            if reachable.insert(s) {
                stack.extend(org.state(s).children.iter().copied());
            }
        }
        for root in &sharded.shard_roots {
            assert!(reachable.contains(root), "shard root {root:?} unreachable");
        }
    }

    #[test]
    fn sharded_build_is_thread_count_invariant() {
        let bench = TagCloudConfig::small().generate();
        let c = cfg(3, 100);
        let mut prints = Vec::new();
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);
            prints.push(
                build_sharded(&bench.lake, &c)
                    .built
                    .organization
                    .fingerprint(),
            );
        }
        rayon::set_num_threads(0);
        assert_eq!(
            prints[0], prints[1],
            "worker count must not change the stitched organization"
        );
    }

    #[test]
    fn shard_count_beyond_tags_degrades_to_singletons() {
        let bench = TagCloudConfig::small().generate();
        let n_tags = bench.lake.n_tags();
        let sharded = build_sharded(&bench.lake, &cfg(n_tags * 2, 60));
        assert!(sharded.n_shards() <= n_tags);
        sharded
            .built
            .organization
            .validate(&sharded.built.ctx)
            .expect("singleton-heavy stitch is valid");
        // Every singleton shard roots at its tag state directly.
        for (tags, &root) in sharded.shard_tags.iter().zip(&sharded.shard_roots) {
            if let [only] = tags.as_slice() {
                let t = sharded.built.ctx.local_tag(*only).unwrap();
                assert_eq!(root, sharded.built.organization.tag_state(t));
            }
        }
    }

    #[test]
    fn stitched_evaluator_agrees_with_fresh_recompute() {
        // Incremental evaluation on the stitched DAG (router hop included)
        // must track a from-scratch recompute, at 1 and 4 workers.
        let bench = TagCloudConfig::small().generate();
        let sharded = build_sharded(&bench.lake, &cfg(3, 80));
        let ctx = &sharded.built.ctx;
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);
            let mut org = sharded.built.organization.clone();
            let stats = search::optimize(ctx, &mut org, &cfg(1, 40));
            let reps = Representatives::exact(ctx);
            let fresh = Evaluator::new(ctx, &org, sharded.built.nav, &reps).effectiveness();
            assert!(
                (stats.final_effectiveness - fresh).abs() < 1e-9,
                "incremental {} vs fresh {} at {threads} threads",
                stats.final_effectiveness,
                fresh
            );
        }
        rayon::set_num_threads(0);
    }

    #[test]
    fn sharded_effectiveness_is_sane() {
        let bench = TagCloudConfig::small().generate();
        let sharded = build_sharded(&bench.lake, &cfg(4, 120));
        let eff = sharded.effectiveness();
        assert!(eff > 0.0 && eff <= 1.0, "effectiveness {eff} out of range");
        // Shard metadata is consistent.
        assert_eq!(sharded.shard_stats.len(), sharded.n_shards());
        assert_eq!(sharded.shard_roots.len(), sharded.n_shards());
    }

    #[test]
    fn auto_policy_resolves_to_spectrum_knee_and_stays_deterministic() {
        let bench = TagCloudConfig::small().generate();
        let c = policy_cfg(ShardPolicy::Auto, 100);
        let a = build_sharded(&bench.lake, &c);
        let spec = a.shard_spectrum.as_ref().expect("auto keeps its spectrum");
        assert_eq!(spec.candidates[0], 1);
        assert!(spec.knee >= 1 && spec.knee <= AUTO_SHARD_MAX);
        // The realized shard count matches the knee unless the partition
        // collapsed below it.
        assert!(a.n_shards() <= spec.knee.max(1));
        // Deterministic, and invariant to the worker count.
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);
            let again = build_sharded(&bench.lake, &c);
            rayon::set_num_threads(0);
            assert_eq!(
                again.built.organization.fingerprint(),
                a.built.organization.fingerprint(),
                "auto policy diverged at {threads} threads"
            );
            assert_eq!(
                again.shard_spectrum.as_ref().unwrap().knee,
                spec.knee,
                "knee diverged at {threads} threads"
            );
        }
        // A fixed policy never records a spectrum.
        assert!(build_sharded(&bench.lake, &cfg(2, 60))
            .shard_spectrum
            .is_none());
    }

    #[test]
    fn auto_policy_never_loses_to_fixed_four_on_bench_lake() {
        // Acceptance criterion: on the bench lake family, the data-driven
        // count must match or beat the historical fixed-4 default (which
        // BENCH_shard.json showed costing 5.4% effectiveness).
        let bench = TagCloudConfig::small().generate();
        let auto = build_sharded(&bench.lake, &policy_cfg(ShardPolicy::Auto, 120));
        let fixed4 = build_sharded(&bench.lake, &cfg(4, 120));
        let (ea, e4) = (auto.effectiveness(), fixed4.effectiveness());
        assert!(
            ea >= e4 - 1e-9,
            "auto ({} shards, eff {ea}) fell below fixed-4 (eff {e4}); spectrum {:?}",
            auto.n_shards(),
            auto.shard_spectrum
        );
    }

    #[test]
    fn derived_seeds_are_distinct_substreams() {
        let mut seen = std::collections::HashSet::new();
        for shard in 0..64 {
            assert!(seen.insert(derive_shard_seed(42, shard)));
        }
        assert!(!seen.contains(&42), "substreams avoid the base seed");
    }
}
