//! Fixed-capacity bitsets.
//!
//! Organization states carry two sets — their tags and their attributes —
//! over small dense local universes (see [`crate::ctx`]). Unions during
//! inclusion-property maintenance are the hot set operation, so the sets
//! are plain `u64`-block bitsets with word-at-a-time operations.

/// A fixed-capacity set of small integers backed by `u64` blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    blocks: Box<[u64]>,
    capacity: u32,
}

impl BitSet {
    /// An empty set with room for values in `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            blocks: vec![0u64; capacity.div_ceil(64)].into_boxed_slice(),
            capacity: capacity as u32,
        }
    }

    /// A set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> BitSet {
        let mut s = BitSet::new(capacity);
        for i in 0..capacity {
            s.insert(i as u32);
        }
        s
    }

    /// Build from an iterator of members.
    pub fn from_iter_with_capacity(capacity: usize, iter: impl IntoIterator<Item = u32>) -> BitSet {
        let mut s = BitSet::new(capacity);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// The capacity (exclusive upper bound of storable values).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Insert `v`; returns true if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `v >= capacity`.
    #[inline]
    pub fn insert(&mut self, v: u32) -> bool {
        assert!(v < self.capacity, "bitset value {v} out of capacity");
        let (b, m) = (v as usize / 64, 1u64 << (v % 64));
        let fresh = self.blocks[b] & m == 0;
        self.blocks[b] |= m;
        fresh
    }

    /// Remove `v`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, v: u32) -> bool {
        if v >= self.capacity {
            return false;
        }
        let (b, m) = (v as usize / 64, 1u64 << (v % 64));
        let present = self.blocks[b] & m != 0;
        self.blocks[b] &= !m;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        if v >= self.capacity {
            return false;
        }
        self.blocks[v as usize / 64] & (1u64 << (v % 64)) != 0
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when no members are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Remove all members.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// `self ∪= other`. Returns true if `self` changed.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            let merged = *a | *b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// Is `other` a subset of `self`?
    pub fn is_superset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(a, b)| b & !a == 0)
    }

    /// Members of `other` missing from `self` (i.e. `other \ self`).
    pub fn missing_from(&self, other: &BitSet) -> impl Iterator<Item = u32> + '_ {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let diffs: Vec<u64> = other
            .blocks
            .iter()
            .zip(self.blocks.iter())
            .map(|(b, a)| b & !a)
            .collect();
        OnesIter {
            blocks: diffs.into_boxed_slice(),
            block_idx: 0,
            current: 0,
            initialized: false,
        }
    }

    /// The raw `u64` blocks, little-bit-endian within each word. Two sets
    /// of equal capacity are equal exactly when their words are equal —
    /// the persistent store serializes these words verbatim and the
    /// serving layer compares tag sets across snapshots word-wise.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.blocks
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        OnesIter {
            blocks: self.blocks.clone(),
            block_idx: 0,
            current: 0,
            initialized: false,
        }
    }
}

struct OnesIter {
    blocks: Box<[u64]>,
    block_idx: usize,
    current: u64,
    initialized: bool,
}

impl Iterator for OnesIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if !self.initialized {
            self.initialized = true;
            self.current = *self.blocks.first()?;
        }
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.block_idx as u32) * 64 + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
    }
}

impl FromIterator<u32> for BitSet {
    /// Collect members, sizing capacity to `max + 1`.
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> BitSet {
        let members: Vec<u32> = iter.into_iter().collect();
        let cap = members.iter().max().map(|m| *m as usize + 1).unwrap_or(0);
        BitSet::from_iter_with_capacity(cap, members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.insert(7));
        assert!(!s.insert(7), "double insert reports no change");
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert_eq!(s.len(), 1);
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert!(s.is_empty());
    }

    #[test]
    fn boundary_values() {
        let mut s = BitSet::new(128);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(127);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn union_with_reports_change() {
        let mut a = BitSet::from_iter_with_capacity(70, [1, 2]);
        let b = BitSet::from_iter_with_capacity(70, [2, 65]);
        assert!(a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 65]);
        assert!(!a.union_with(&b), "idempotent union reports no change");
    }

    #[test]
    fn superset_checks() {
        let a = BitSet::from_iter_with_capacity(70, [1, 2, 65]);
        let b = BitSet::from_iter_with_capacity(70, [2, 65]);
        assert!(a.is_superset_of(&b));
        assert!(!b.is_superset_of(&a));
        assert!(a.is_superset_of(&a));
        let empty = BitSet::new(70);
        assert!(a.is_superset_of(&empty));
        assert!(empty.is_superset_of(&empty));
    }

    #[test]
    fn missing_from_is_set_difference() {
        let a = BitSet::from_iter_with_capacity(70, [1, 2]);
        let b = BitSet::from_iter_with_capacity(70, [2, 3, 65]);
        let diff: Vec<u32> = a.missing_from(&b).collect();
        assert_eq!(diff, vec![3, 65]);
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(65);
        assert_eq!(s.len(), 65);
        assert!(s.contains(64));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let s: BitSet = [3u32, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert!(s.contains(9));
        let empty: BitSet = std::iter::empty().collect();
        assert_eq!(empty.capacity(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn zero_capacity_is_safe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }
}
