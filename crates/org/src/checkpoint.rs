//! Crash-safe search checkpoints.
//!
//! A [`Checkpoint`] captures everything [`crate::search::optimize`] needs
//! to continue an interrupted run **bit-identically**: the committed
//! operation log (the organization and the incremental evaluator are both
//! deterministic replays of it — rejected proposals roll back bit-exactly,
//! so the post-replay state equals the live state at the checkpointed
//! round, bit for bit), the xoshiro256++ RNG state, the sweep cursor
//! (level snapshot, sweep-start reachability, visit list and position),
//! every counter, and the per-proposal trajectory.
//!
//! ## File format
//!
//! A checkpoint file is a little-endian binary record:
//!
//! ```text
//! magic "DLNCKPT\x01" · u32 version · fingerprints · RNG state ·
//! counters · op log · per-proposal records · sweep cursor · u64 FNV-1a
//! ```
//!
//! The trailing checksum covers every preceding byte. A torn or partial
//! write — simulated by the `checkpoint.torn` failpoint, which truncates
//! the buffer before it reaches the filesystem — fails the checksum on
//! load and is reported as [`DlnError::Corrupt`]. Publication goes
//! through the shared [`crate::persist`] plumbing: [`Checkpoint::save`]
//! stages to `<path>.tmp`, fsyncs, rotates the previous file to
//! `<path>.prev` and renames into place, so
//! [`Checkpoint::load_with_fallback`] can fall back one generation when
//! the newest checkpoint is torn.
//!
//! Two fingerprints guard against resuming under the wrong conditions:
//! the *config* fingerprint (seed, batch width, plateau/iteration budgets,
//! acceptance parameters) and the *initial-organization* fingerprint
//! ([`Organization::fingerprint`]) — resuming replays the op log against
//! the caller-provided initial organization, which must be the one the
//! original run started from. The worker-thread count is deliberately
//! excluded: results never depend on it.

use std::path::{Path, PathBuf};

use dln_fault::{DlnError, DlnResult};

use crate::ops::OpKind;
use crate::persist::{self, Reader, Writer};
use crate::search::IterStats;

/// File magic (8 bytes, includes a format generation byte).
const MAGIC: &[u8; 8] = b"DLNCKPT\x01";
/// Format version, bumped on any layout change.
const VERSION: u32 = 1;

/// Where and how often [`crate::search::optimize`] checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Checkpoint file path. The previous generation is kept at
    /// `<path>.prev` as the torn-write fallback.
    pub path: PathBuf,
    /// Write a checkpoint every this many resolution rounds (0 disables
    /// periodic writes; a deadline exit still writes a final checkpoint).
    pub every_rounds: usize,
}

/// The saved sweep cursor: where in the level walk the search stopped.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct CursorSnapshot {
    /// Level snapshot taken at sweep start (`u32::MAX` = unreachable).
    pub levels: Vec<u32>,
    /// Sweep-start reachability (exact bits; orders the level visit lists
    /// of the remaining levels in this sweep).
    pub reach_sweep: Vec<f64>,
    /// Deepest level of this sweep.
    pub max_level: u32,
    /// Level currently being walked (0: sweep not yet entered a level).
    pub level: u32,
    /// Visit list of the current level.
    pub at_level: Vec<u32>,
    /// Next position in `at_level`.
    pub idx: u64,
    /// Whether any proposal applied so far in this sweep.
    pub proposed_this_sweep: bool,
}

/// A resumable snapshot of an interrupted search run.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Fingerprint of the [`crate::search::SearchConfig`] that produced
    /// this run — resuming under a different configuration is refused.
    pub(crate) config_fingerprint: u64,
    /// Fingerprint of the initial organization the run started from.
    pub(crate) init_fingerprint: u64,
    /// Raw xoshiro256++ state at the checkpointed round boundary.
    pub(crate) rng_state: [u64; 4],
    /// Proposals made so far.
    pub(crate) iterations: u64,
    /// Proposals accepted so far.
    pub(crate) accepted: u64,
    /// Cancelled speculative evaluations so far.
    pub(crate) speculative_evals: u64,
    /// Current plateau counter.
    pub(crate) plateau: u64,
    /// Resolution rounds completed so far.
    pub(crate) rounds: u64,
    /// Current effectiveness (exact bits; verified after replay).
    pub(crate) eff_bits: u64,
    /// Best effectiveness seen (exact bits).
    pub(crate) best_bits: u64,
    /// Initial effectiveness (exact bits; verified against the rebuilt
    /// evaluator before replay).
    pub(crate) initial_bits: u64,
    /// Wall-clock spent before this checkpoint, in nanoseconds.
    pub(crate) elapsed_nanos: u64,
    /// Number of leading ops of `op_log` after which the best organization
    /// was captured (0: the initial organization is the best so far).
    pub(crate) best_at_ops: u64,
    /// Committed operations in order: `(target slot, kind)`.
    pub(crate) op_log: Vec<(u32, u8)>,
    /// Per-proposal trajectory so far.
    pub(crate) iter_stats: Vec<IterStats>,
    /// The sweep cursor.
    pub(crate) cursor: CursorSnapshot,
}

/// Encode an [`OpKind`] for the op log.
pub(crate) fn encode_kind(kind: OpKind) -> u8 {
    match kind {
        OpKind::AddParent => 1,
        OpKind::DeleteParent => 2,
    }
}

/// Decode an op-log kind byte.
pub(crate) fn decode_kind(b: u8) -> Option<OpKind> {
    match b {
        1 => Some(OpKind::AddParent),
        2 => Some(OpKind::DeleteParent),
        _ => None,
    }
}

impl Checkpoint {
    /// Serialize to the checkpoint wire format (checksum included).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(
            256 + self.op_log.len() * 5
                + self.iter_stats.len() * 44
                + self.cursor.levels.len() * 16,
        );
        w.bytes(MAGIC);
        w.u32(VERSION);
        w.u64(self.config_fingerprint);
        w.u64(self.init_fingerprint);
        for s in self.rng_state {
            w.u64(s);
        }
        w.u64(self.iterations);
        w.u64(self.accepted);
        w.u64(self.speculative_evals);
        w.u64(self.plateau);
        w.u64(self.rounds);
        w.u64(self.eff_bits);
        w.u64(self.best_bits);
        w.u64(self.initial_bits);
        w.u64(self.elapsed_nanos);
        w.u64(self.best_at_ops);
        w.u64(self.op_log.len() as u64);
        for &(slot, kind) in &self.op_log {
            w.u32(slot);
            w.u8(kind);
        }
        w.u64(self.iter_stats.len() as u64);
        for s in &self.iter_stats {
            w.u8(match s.op {
                None => 0,
                Some(k) => encode_kind(k),
            });
            w.u8(s.accepted as u8);
            w.u64(s.effectiveness.to_bits());
            w.u64(s.states_visited as u64);
            w.u64(s.states_alive as u64);
            w.u64(s.queries_evaluated as u64);
            w.u64(s.attrs_covered as u64);
        }
        let c = &self.cursor;
        w.u64(c.levels.len() as u64);
        for &l in &c.levels {
            w.u32(l);
        }
        w.u64(c.reach_sweep.len() as u64);
        for &r in &c.reach_sweep {
            w.u64(r.to_bits());
        }
        w.u32(c.max_level);
        w.u32(c.level);
        w.u64(c.at_level.len() as u64);
        for &s in &c.at_level {
            w.u32(s);
        }
        w.u64(c.idx);
        w.u8(c.proposed_this_sweep as u8);
        w.seal()
    }

    /// Decode and integrity-check a checkpoint buffer. `context` names the
    /// source (a path) for error messages.
    pub(crate) fn decode(bytes: &[u8], context: &str) -> DlnResult<Checkpoint> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(DlnError::corrupt(
                context,
                format!("{} bytes is too short for a checkpoint", bytes.len()),
            ));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(DlnError::corrupt(context, "bad magic"));
        }
        let payload = persist::verify_sealed(bytes, context)?;
        let mut r = Reader::new(payload, MAGIC.len(), context);
        let version = r.u32()?;
        if version != VERSION {
            return Err(DlnError::corrupt(
                context,
                format!("unsupported checkpoint version {version} (expected {VERSION})"),
            ));
        }
        let config_fingerprint = r.u64()?;
        let init_fingerprint = r.u64()?;
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.u64()?;
        }
        let iterations = r.u64()?;
        let accepted = r.u64()?;
        let speculative_evals = r.u64()?;
        let plateau = r.u64()?;
        let rounds = r.u64()?;
        let eff_bits = r.u64()?;
        let best_bits = r.u64()?;
        let initial_bits = r.u64()?;
        let elapsed_nanos = r.u64()?;
        let best_at_ops = r.u64()?;
        let n_ops = r.len_prefix()?;
        let mut op_log = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let slot = r.u32()?;
            let kind = r.u8()?;
            if decode_kind(kind).is_none() {
                return Err(DlnError::corrupt(context, format!("bad op kind {kind}")));
            }
            op_log.push((slot, kind));
        }
        let n_stats = r.len_prefix()?;
        let mut iter_stats = Vec::with_capacity(n_stats);
        for _ in 0..n_stats {
            let op = match r.u8()? {
                0 => None,
                b => Some(
                    decode_kind(b)
                        .ok_or_else(|| DlnError::corrupt(context, format!("bad stat op {b}")))?,
                ),
            };
            let accepted = r.u8()? != 0;
            let effectiveness = f64::from_bits(r.u64()?);
            let states_visited = r.u64()? as usize;
            let states_alive = r.u64()? as usize;
            let queries_evaluated = r.u64()? as usize;
            let attrs_covered = r.u64()? as usize;
            iter_stats.push(IterStats {
                op,
                accepted,
                effectiveness,
                states_visited,
                states_alive,
                queries_evaluated,
                attrs_covered,
            });
        }
        let n_levels = r.len_prefix()?;
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            levels.push(r.u32()?);
        }
        let n_reach = r.len_prefix()?;
        let mut reach_sweep = Vec::with_capacity(n_reach);
        for _ in 0..n_reach {
            reach_sweep.push(f64::from_bits(r.u64()?));
        }
        let max_level = r.u32()?;
        let level = r.u32()?;
        let n_at = r.len_prefix()?;
        let mut at_level = Vec::with_capacity(n_at);
        for _ in 0..n_at {
            at_level.push(r.u32()?);
        }
        let idx = r.u64()?;
        let proposed_this_sweep = r.u8()? != 0;
        if r.pos() != payload.len() {
            return Err(DlnError::corrupt(
                context,
                format!("{} trailing bytes", payload.len() - r.pos()),
            ));
        }
        Ok(Checkpoint {
            config_fingerprint,
            init_fingerprint,
            rng_state,
            iterations,
            accepted,
            speculative_evals,
            plateau,
            rounds,
            eff_bits,
            best_bits,
            initial_bits,
            elapsed_nanos,
            best_at_ops,
            op_log,
            iter_stats,
            cursor: CursorSnapshot {
                levels,
                reach_sweep,
                max_level,
                level,
                at_level,
                idx,
                proposed_this_sweep,
            },
        })
    }

    /// Write the checkpoint to `path` via the shared atomic-publish
    /// protocol ([`persist::atomic_write`]): staged at `<path>.tmp`,
    /// fsynced, the previous generation rotated to `<path>.prev`.
    ///
    /// Fault-injection site `checkpoint.torn`: when it fires, the encoded
    /// buffer is truncated before hitting the filesystem — the resulting
    /// file fails its checksum on load, exactly like a real partial write.
    pub fn save(&self, path: &Path) -> DlnResult<()> {
        let mut buf = self.encode();
        if dln_fault::should_fail("checkpoint.torn") {
            let keep = buf.len() * 2 / 3;
            eprintln!(
                "warning: injected torn write on {} ({keep} of {} bytes)",
                path.display(),
                buf.len()
            );
            buf.truncate(keep);
        }
        persist::atomic_write(path, &buf)
    }

    /// Load and integrity-check the checkpoint at `path`.
    pub fn load(path: &Path) -> DlnResult<Checkpoint> {
        let bytes = std::fs::read(path)
            .map_err(|e| DlnError::io(format!("reading {}", path.display()), e))?;
        Self::decode(&bytes, &path.display().to_string())
    }

    /// Load the checkpoint at `path`, falling back to the rotated previous
    /// generation (`<path>.prev`) when the newest file is unreadable or
    /// fails its checksum (torn write). Errors only when both generations
    /// are unusable.
    pub fn load_with_fallback(path: &Path) -> DlnResult<Checkpoint> {
        persist::load_with_fallback(path, "checkpoint", Self::load)
    }

    /// Proposals made up to this checkpoint.
    pub fn iterations(&self) -> usize {
        self.iterations as usize
    }

    /// Resolution rounds completed up to this checkpoint.
    pub fn rounds(&self) -> usize {
        self.rounds as usize
    }

    /// Committed operations in the replay log.
    pub fn n_committed_ops(&self) -> usize {
        self.op_log.len()
    }

    /// Effectiveness at the checkpointed round boundary.
    pub fn effectiveness(&self) -> f64 {
        f64::from_bits(self.eff_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            config_fingerprint: 0x1122_3344,
            init_fingerprint: 0x5566_7788,
            rng_state: [1, 2, 3, u64::MAX],
            iterations: 42,
            accepted: 17,
            speculative_evals: 5,
            plateau: 3,
            rounds: 21,
            eff_bits: 0.875f64.to_bits(),
            best_bits: 0.9f64.to_bits(),
            initial_bits: 0.5f64.to_bits(),
            elapsed_nanos: 123_456_789,
            best_at_ops: 2,
            op_log: vec![(7, 1), (3, 2), (9, 1)],
            iter_stats: vec![
                IterStats {
                    op: Some(OpKind::AddParent),
                    accepted: true,
                    effectiveness: 0.7,
                    states_visited: 10,
                    states_alive: 20,
                    queries_evaluated: 30,
                    attrs_covered: 40,
                },
                IterStats {
                    op: None,
                    accepted: false,
                    effectiveness: 0.7,
                    states_visited: 0,
                    states_alive: 20,
                    queries_evaluated: 0,
                    attrs_covered: 0,
                },
            ],
            cursor: CursorSnapshot {
                levels: vec![0, 1, 2, u32::MAX],
                reach_sweep: vec![0.25, 0.5, -0.0, 1.0],
                max_level: 2,
                level: 1,
                at_level: vec![3, 1, 2],
                idx: 1,
                proposed_this_sweep: true,
            },
        }
    }

    fn assert_roundtrip(a: &Checkpoint, b: &Checkpoint) {
        assert_eq!(a.config_fingerprint, b.config_fingerprint);
        assert_eq!(a.init_fingerprint, b.init_fingerprint);
        assert_eq!(a.rng_state, b.rng_state);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.speculative_evals, b.speculative_evals);
        assert_eq!(a.plateau, b.plateau);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.eff_bits, b.eff_bits);
        assert_eq!(a.best_bits, b.best_bits);
        assert_eq!(a.initial_bits, b.initial_bits);
        assert_eq!(a.elapsed_nanos, b.elapsed_nanos);
        assert_eq!(a.best_at_ops, b.best_at_ops);
        assert_eq!(a.op_log, b.op_log);
        assert_eq!(a.iter_stats, b.iter_stats);
        assert_eq!(a.cursor, b.cursor);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = sample();
        let bytes = c.encode();
        let d = Checkpoint::decode(&bytes, "test").expect("decode");
        assert_roundtrip(&c, &d);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Checkpoint::decode(&bad, "test").is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_as_corrupt() {
        let bytes = sample().encode();
        for keep in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            let err = Checkpoint::decode(&bytes[..keep], "test").unwrap_err();
            assert!(
                matches!(err, DlnError::Corrupt { .. }),
                "keep={keep}: {err}"
            );
        }
    }

    #[test]
    fn save_rotates_and_fallback_survives_torn_write() {
        let dir = std::env::temp_dir().join(format!("dln_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("search.ckpt");
        let mut first = sample();
        first.rounds = 1;
        first.save(&path).expect("clean write");
        assert_eq!(Checkpoint::load(&path).unwrap().rounds, 1);
        // Second write is torn: the newest file fails its checksum, the
        // rotated previous generation still loads.
        let mut second = sample();
        second.rounds = 2;
        {
            let _fp = dln_fault::scoped("checkpoint.torn:1.0:0").unwrap();
            second.save(&path).expect("torn write still writes bytes");
        }
        assert!(matches!(
            Checkpoint::load(&path),
            Err(DlnError::Corrupt { .. })
        ));
        let recovered = Checkpoint::load_with_fallback(&path).expect("fallback");
        assert_eq!(recovered.rounds, 1, "fallback is the previous generation");
        // A third clean write rotates the torn file away; the newest loads.
        let mut third = sample();
        third.rounds = 3;
        third.save(&path).expect("clean write");
        assert_eq!(Checkpoint::load_with_fallback(&path).unwrap().rounds, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_both_generations_is_an_error() {
        let path = std::env::temp_dir().join("dln_ckpt_never_written.ckpt");
        assert!(Checkpoint::load_with_fallback(&path).is_err());
    }
}
