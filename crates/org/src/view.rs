//! Read-only accessor views over a complete serving snapshot.
//!
//! The serving layer historically read `OrgContext` / `Organization`
//! fields directly; the persistent store (DESIGN.md §5g) introduces a
//! second representation — borrowed sections of a memory-mapped file —
//! that must be served through the *same* surface. [`OrgView`] is that
//! surface: every navigation-time read (children, tag sets, labels,
//! tables, unit topics) goes through it, implemented by
//!
//! * [`OwnedSnap`] — the in-memory `(ctx, org)` pair behind `Arc`s, and
//! * [`crate::store::MappedSnapshot`] — zero-copy slices into a mapped
//!   store file.
//!
//! Shared *semantics* live in the trait's provided methods (labelling,
//! attribute-set membership): implemented once, both representations
//! produce identical bytes by construction — the mapped-vs-in-memory
//! bit-identity the store tests assert.

use std::sync::Arc;

use dln_lake::TableId;

use crate::ctx::OrgContext;
use crate::graph::{Organization, StateId};

/// Iterate the set bits of a little-endian `u64` word slice in ascending
/// order — the zero-copy equivalent of [`crate::BitSet::iter`].
pub fn ones(words: &[u64]) -> impl Iterator<Item = u32> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let mut rest = w;
        std::iter::from_fn(move || {
            if rest == 0 {
                return None;
            }
            let bit = rest.trailing_zeros();
            rest &= rest - 1;
            Some(wi as u32 * 64 + bit)
        })
    })
}

/// Does the little-endian word set `words` contain `v`?
#[inline]
pub fn word_contains(words: &[u64], v: u32) -> bool {
    let (b, m) = (v as usize / 64, 1u64 << (v % 64));
    b < words.len() && words[b] & m != 0
}

/// The complete read surface of one published organization snapshot.
///
/// All state sets are exposed as raw `u64` words (see
/// [`crate::BitSet::words`]): for a fixed universe size, word-slice
/// equality is set equality, which is what cross-epoch path replay
/// compares.
pub trait OrgView: Send + Sync {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Number of tags in the universe.
    fn n_tags(&self) -> usize;
    /// Number of attributes in the universe.
    fn n_attrs(&self) -> usize;
    /// Number of tables in the universe.
    fn n_tables(&self) -> usize;
    /// Number of state slots (alive + tombstoned).
    fn n_slots(&self) -> usize;
    /// The root state.
    fn root(&self) -> StateId;
    /// Is the state slot alive?
    fn alive(&self, sid: StateId) -> bool;
    /// The local tag of a tag state, else `None`.
    fn state_tag(&self, sid: StateId) -> Option<u32>;
    /// Child states, in canonical (sorted) order.
    fn children(&self, sid: StateId) -> &[StateId];
    /// Parent states, in canonical (sorted) order.
    fn parents(&self, sid: StateId) -> &[StateId];
    /// The state's tag set as raw words.
    fn state_tag_words(&self, sid: StateId) -> &[u64];
    /// The state's attribute set as raw words.
    fn state_attr_words(&self, sid: StateId) -> &[u64];
    /// The state's unit-normalized topic vector.
    fn state_unit_topic(&self, sid: StateId) -> &[f32];
    /// The precomputed row-major `n_children × dim` child unit-topic
    /// matrix for Eq 1 ranking, when this representation stores one
    /// (the mapped store does; the in-memory snapshot caches per-state
    /// matrices one level up instead and returns `None` here).
    fn child_mat(&self, sid: StateId) -> Option<&[f32]>;
    /// Alive states in topological order (parents before children).
    fn topo_order(&self) -> &[StateId];
    /// Display label of tag `t`.
    fn tag_label(&self, t: u32) -> &str;
    /// `data(t)`: local attribute ids of tag `t`.
    fn tag_attrs(&self, t: u32) -> &[u32];
    /// The tag state of local tag `t`.
    fn tag_state(&self, t: u32) -> StateId;
    /// Lake-global id of local table `ti`.
    fn table_global(&self, ti: u32) -> TableId;
    /// Local attribute ids of table `ti`.
    fn table_attrs(&self, ti: u32) -> &[u32];
    /// Unit topic of attribute `a`.
    fn attr_unit(&self, a: u32) -> &[f32];
    /// Local table of attribute `a`.
    fn attr_table(&self, a: u32) -> u32;

    /// Does the state's attribute set contain `a`?
    #[inline]
    fn state_attr_contains(&self, sid: StateId, a: u32) -> bool {
        word_contains(self.state_attr_words(sid), a)
    }

    /// Number of attributes under the state.
    #[inline]
    fn state_attr_count(&self, sid: StateId) -> usize {
        self.state_attr_words(sid)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// A human-readable label for a state — the §4.4 labelling scheme of
    /// [`Organization::label`], implemented once over the view surface so
    /// the in-memory and mapped representations render identical strings
    /// by construction: the tag label for tag states, otherwise the
    /// `max_tags` most *popular* member tags (popularity = attribute count
    /// within the state; ties broken by ascending tag id).
    fn label_of(&self, sid: StateId, max_tags: usize) -> String {
        if let Some(t) = self.state_tag(sid) {
            return self.tag_label(t).to_string();
        }
        let mut scored: Vec<(u32, usize)> = ones(self.state_tag_words(sid))
            .map(|t| {
                let pop = self
                    .tag_attrs(t)
                    .iter()
                    .filter(|&&a| self.state_attr_contains(sid, a))
                    .count();
                (t, pop)
            })
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let names: Vec<&str> = scored
            .iter()
            .take(max_tags.max(1))
            .map(|(t, _)| self.tag_label(*t))
            .collect();
        names.join(" / ")
    }

    /// Tables represented under `sid` (at least one attribute in the
    /// state's extent) as `(table, matching attribute count)`,
    /// most-covered first, ties by ascending table id — the serving-layer
    /// equivalent of [`crate::Navigator::tables_here`].
    fn tables_under(&self, sid: StateId) -> Vec<(TableId, usize)> {
        let mut counts: Vec<(TableId, usize)> = Vec::new();
        for ti in 0..self.n_tables() as u32 {
            let n = self
                .table_attrs(ti)
                .iter()
                .filter(|&&a| self.state_attr_contains(sid, a))
                .count();
            if n > 0 {
                counts.push((self.table_global(ti), n));
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts
    }

    /// Is `path` a root-anchored chain of alive edges on this view?
    fn path_is_valid(&self, path: &[StateId]) -> bool {
        let Some(&first) = path.first() else {
            return false;
        };
        if first != self.root() {
            return false;
        }
        path.iter()
            .all(|s| s.index() < self.n_slots() && self.alive(*s))
            && path.windows(2).all(|w| self.children(w[0]).contains(&w[1]))
    }
}

/// The in-memory snapshot representation: a context + organization pair
/// behind `Arc`s, viewed through [`OrgView`].
#[derive(Clone)]
pub struct OwnedSnap {
    /// The organization's context universe.
    pub ctx: Arc<OrgContext>,
    /// The organization DAG.
    pub org: Arc<Organization>,
}

impl OrgView for OwnedSnap {
    fn dim(&self) -> usize {
        self.ctx.dim()
    }
    fn n_tags(&self) -> usize {
        self.ctx.n_tags()
    }
    fn n_attrs(&self) -> usize {
        self.ctx.n_attrs()
    }
    fn n_tables(&self) -> usize {
        self.ctx.n_tables()
    }
    fn n_slots(&self) -> usize {
        self.org.n_slots()
    }
    fn root(&self) -> StateId {
        self.org.root()
    }
    fn alive(&self, sid: StateId) -> bool {
        self.org.state(sid).alive
    }
    fn state_tag(&self, sid: StateId) -> Option<u32> {
        self.org.state(sid).tag
    }
    fn children(&self, sid: StateId) -> &[StateId] {
        &self.org.state(sid).children
    }
    fn parents(&self, sid: StateId) -> &[StateId] {
        &self.org.state(sid).parents
    }
    fn state_tag_words(&self, sid: StateId) -> &[u64] {
        self.org.state(sid).tags.words()
    }
    fn state_attr_words(&self, sid: StateId) -> &[u64] {
        self.org.state(sid).attrs.words()
    }
    fn state_unit_topic(&self, sid: StateId) -> &[f32] {
        &self.org.state(sid).unit_topic
    }
    fn child_mat(&self, _sid: StateId) -> Option<&[f32]> {
        None
    }
    fn topo_order(&self) -> &[StateId] {
        self.org.topo_order()
    }
    fn tag_label(&self, t: u32) -> &str {
        &self.ctx.tag(t).label
    }
    fn tag_attrs(&self, t: u32) -> &[u32] {
        &self.ctx.tag(t).attrs
    }
    fn tag_state(&self, t: u32) -> StateId {
        self.org.tag_state(t)
    }
    fn table_global(&self, ti: u32) -> TableId {
        self.ctx.tables()[ti as usize].global
    }
    fn table_attrs(&self, ti: u32) -> &[u32] {
        &self.ctx.tables()[ti as usize].attrs
    }
    fn attr_unit(&self, a: u32) -> &[f32] {
        self.ctx.attr_unit(a)
    }
    fn attr_table(&self, a: u32) -> u32 {
        self.ctx.attr(a).table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::clustering_org;
    use dln_synth::TagCloudConfig;

    fn owned() -> OwnedSnap {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        OwnedSnap {
            ctx: Arc::new(ctx),
            org: Arc::new(org),
        }
    }

    #[test]
    fn ones_matches_bitset_iter() {
        let set = crate::BitSet::from_iter_with_capacity(200, [0u32, 5, 63, 64, 128, 199]);
        let via_words: Vec<u32> = ones(set.words()).collect();
        let via_iter: Vec<u32> = set.iter().collect();
        assert_eq!(via_words, via_iter);
        for v in 0..200 {
            assert_eq!(word_contains(set.words(), v), set.contains(v));
        }
        assert!(!word_contains(set.words(), 10_000));
    }

    #[test]
    fn owned_view_mirrors_structs() {
        let v = owned();
        assert_eq!(v.n_slots(), v.org.n_slots());
        assert_eq!(v.root(), v.org.root());
        for sid in v.org.alive_ids() {
            assert_eq!(v.children(sid), v.org.state(sid).children.as_slice());
            assert_eq!(v.state_tag(sid), v.org.state(sid).tag);
            assert_eq!(
                v.state_attr_count(sid),
                v.org.state(sid).attrs.len(),
                "popcount over words equals BitSet::len"
            );
        }
    }

    #[test]
    fn label_of_matches_org_label_exactly() {
        let v = owned();
        for sid in v.org.alive_ids() {
            for max_tags in [0usize, 1, 2, 3] {
                assert_eq!(
                    v.label_of(sid, max_tags),
                    v.org.label(&v.ctx, sid, max_tags),
                    "state {} max_tags {max_tags}",
                    sid.0
                );
            }
        }
    }

    #[test]
    fn tables_under_matches_navigator() {
        let v = owned();
        let nav = crate::Navigator::new(&v.ctx, &v.org, crate::NavConfig::default());
        // Navigator sits at the root; compare against the view.
        assert_eq!(v.tables_under(v.root()), nav.tables_here());
    }

    #[test]
    fn path_validity_via_view() {
        let v = owned();
        let root = v.root();
        let child = v.children(root)[0];
        assert!(v.path_is_valid(&[root, child]));
        assert!(!v.path_is_valid(&[child]));
        assert!(!v.path_is_valid(&[]));
        assert!(!v.path_is_valid(&[root, root]));
    }
}
