//! Crash-safe incremental organization maintenance under ingest churn.
//!
//! Where [`crate::reopt`] re-optimizes a *fixed* lake in response to user
//! feedback, a [`Maintainer`] keeps a served organization aligned with a
//! *moving* lake: tables arrive, disappear and get retagged while
//! navigation sessions are live. The cycle mirrors the re-optimizer's
//! epoch-committed state machine:
//!
//! 1. **Ingest** — CDC events ([`ChangeEvent`]) are durably appended to a
//!    checksummed [`ChangeLog`] (`dln-lake`); the ack is the returned
//!    sequence number, written and fsynced before the caller may consider
//!    the event accepted (*ack-after-durable*). A torn append
//!    (`churn.log_torn`) acknowledges nothing and the tail is discarded
//!    on recovery.
//! 2. **Plan** — the maintainer replays the log onto the seed lake (a
//!    pure fold) and derives the next shard assignment: surviving labels
//!    stay put, labels whose tag left the lake are dropped, new labels
//!    are admitted into the nearest shard by topic-centroid cosine, and a
//!    label whose centroid affinity drifted past
//!    [`MaintConfig::rebalance_drift`] is moved across shards. The plan —
//!    log horizon `to_seq`, full next assignment, affected shard set,
//!    cross-shard moves, derived seed, pre-cycle fingerprint — is a pure
//!    function of (change log, organization) and is durably committed
//!    *before* any mutation, so a killed maintainer replans identically.
//! 3. **Apply** — the served organization is cloned and rebased onto the
//!    new tag universe ([`Organization::rebase_universe`]: slot-
//!    preserving, removed tag states tombstoned, new ones appended); only
//!    the *affected* shards are re-searched (deadline-bounded,
//!    checkpointed slices, one durable checkpoint per shard) and grafted;
//!    a rebalance donor that keeps ≥ 2 labels is handled by pure edge
//!    surgery ([`Organization::shed_tag_from_subtree`]) — no search, so a
//!    label migrates across shards without rebuilding both. Routing-tier
//!    tag sets and attribute memberships are recomputed last, then the
//!    whole organization is validated.
//! 4. **Publish** — the staged organization carries the changed-slot set
//!    (tombstones ∪ appended slots; junctions excluded), so the serving
//!    layer republishes it shard-scoped and sessions on untouched shards
//!    ride in place. Only after the publish does
//!    [`Maintainer::mark_published`] commit the cycle, advance
//!    `applied_seq` and compact the change log.
//!
//! Every phase boundary is a crash point covered by a failpoint:
//! `churn.log_torn`, `churn.crash_mid_plan`, `churn.crash_mid_apply`,
//! `churn.search_kill`, `churn.crash_mid_publish` (catalog in
//! `dln-fault`). The invariant, enforced by `tests/churn_chaos.rs`: for
//! any failpoint schedule, a killed maintainer restarted from its durable
//! directory converges to the bit-identical organization of an
//! uninterrupted run, and no change event is ever lost or applied twice.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::time::Duration;

use dln_fault::{DlnError, DlnResult};
use dln_lake::{replay, ChangeEvent, ChangeLog, DataLake, TagId};

use crate::bitset::BitSet;
use crate::checkpoint::{Checkpoint, CheckpointConfig};
use crate::ctx::OrgContext;
use crate::graph::{Organization, StateId};
use crate::init;
use crate::persist;
use crate::reopt::derive_cycle_seed;
use crate::search::{self, SearchConfig, SearchStats, ShardPolicy, StopReason};
use crate::shard::ShardedBuild;

/// Magic prefix of the durable maintainer state file.
const STATE_MAGIC: &[u8; 8] = b"DLNMAINT";
/// Maintainer state format version.
const STATE_VERSION: u8 = 1;

/// Root marker of a shard whose last label left the lake. The slot id is
/// never a valid state (organizations are far smaller than `u32::MAX`).
pub const EMPTY_SHARD: StateId = StateId(u32::MAX);

/// The typed error for an injected maintainer crash at `site`.
fn injected(site: &str) -> DlnError {
    DlnError::io(
        site.to_string(),
        std::io::Error::other(format!("injected maintainer crash at {site}")),
    )
}

// ---------------------------------------------------------------------------
// Durable state
// ---------------------------------------------------------------------------

/// A planned cross-shard label move.
#[derive(Clone, Debug, PartialEq)]
struct PlannedMove {
    label: String,
    from: u32,
    to: u32,
}

/// The in-flight maintenance plan — a pure function of (change log ≤
/// `to_seq`, shard assignment), durably committed before any mutation.
#[derive(Clone, Debug, PartialEq)]
struct PlanState {
    /// Log horizon: the cycle applies exactly the events in
    /// `(applied_seq, to_seq]`.
    to_seq: u64,
    /// Base search seed for this cycle (per-shard seeds derived from it).
    seed: u64,
    /// Fingerprint the served organization must still carry.
    pre_fp: u64,
    /// The full next shard→labels assignment.
    shard_labels: Vec<Vec<String>>,
    /// Sorted indices of shards that need a re-search + graft.
    affected: Vec<u32>,
    /// Cross-shard rebalance moves (donors not in `affected` are handled
    /// by pure edge surgery).
    moves: Vec<PlannedMove>,
}

/// Durable maintainer state (`maint.state` under [`MaintConfig::dir`]).
#[derive(Clone, Debug)]
struct MaintState {
    /// Completed-cycle counter.
    cycle: u64,
    /// Last change-log sequence number folded into the served lake.
    applied_seq: u64,
    /// Shard→labels assignment of the served organization.
    shard_labels: Vec<Vec<String>>,
    /// Shard roots in the served organization ([`EMPTY_SHARD`] sentinel
    /// for shards whose labels all left).
    shard_roots: Vec<StateId>,
    /// The in-flight plan, if any.
    plan: Option<PlanState>,
}

fn write_labels(w: &mut persist::Writer, labels: &[Vec<String>]) {
    w.u64(labels.len() as u64);
    for shard in labels {
        w.u64(shard.len() as u64);
        for l in shard {
            w.u32(l.len() as u32);
            w.bytes(l.as_bytes());
        }
    }
}

fn read_string(r: &mut persist::Reader, context: &str) -> DlnResult<String> {
    let n = r.u32()? as usize;
    if n > r.total_len() {
        return Err(DlnError::corrupt(context, "implausible string length"));
    }
    String::from_utf8(r.take(n)?.to_vec())
        .map_err(|_| DlnError::corrupt(context, "label is not UTF-8"))
}

fn read_labels(r: &mut persist::Reader, context: &str) -> DlnResult<Vec<Vec<String>>> {
    let n_shards = r.u64()? as usize;
    if n_shards > r.total_len() {
        return Err(DlnError::corrupt(context, "implausible shard count"));
    }
    let mut out = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let n = r.u64()? as usize;
        if n > r.total_len() {
            return Err(DlnError::corrupt(context, "implausible label count"));
        }
        let mut shard = Vec::with_capacity(n);
        for _ in 0..n {
            shard.push(read_string(r, context)?);
        }
        out.push(shard);
    }
    Ok(out)
}

impl MaintState {
    fn encode(&self) -> Vec<u8> {
        let mut w = persist::Writer::with_capacity(256);
        w.bytes(STATE_MAGIC);
        w.u8(STATE_VERSION);
        w.u64(self.cycle);
        w.u64(self.applied_seq);
        write_labels(&mut w, &self.shard_labels);
        w.u64(self.shard_roots.len() as u64);
        for r in &self.shard_roots {
            w.u32(r.0);
        }
        match &self.plan {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                w.u64(p.to_seq);
                w.u64(p.seed);
                w.u64(p.pre_fp);
                write_labels(&mut w, &p.shard_labels);
                w.u64(p.affected.len() as u64);
                for &s in &p.affected {
                    w.u32(s);
                }
                w.u64(p.moves.len() as u64);
                for m in &p.moves {
                    w.u32(m.label.len() as u32);
                    w.bytes(m.label.as_bytes());
                    w.u32(m.from);
                    w.u32(m.to);
                }
            }
        }
        w.seal()
    }

    fn decode(bytes: &[u8], context: &str) -> DlnResult<MaintState> {
        let payload = persist::verify_sealed(bytes, context)?;
        let mut r = persist::Reader::new(payload, 0, context);
        if r.take(8)? != STATE_MAGIC {
            return Err(DlnError::corrupt(context, "not a maintainer state file"));
        }
        let version = r.u8()?;
        if version != STATE_VERSION {
            return Err(DlnError::corrupt(
                context,
                format!("unsupported maintainer state version {version}"),
            ));
        }
        let cycle = r.u64()?;
        let applied_seq = r.u64()?;
        let shard_labels = read_labels(&mut r, context)?;
        let n_roots = r.u64()? as usize;
        if n_roots > payload.len() {
            return Err(DlnError::corrupt(context, "implausible shard count"));
        }
        let mut shard_roots = Vec::with_capacity(n_roots);
        for _ in 0..n_roots {
            shard_roots.push(StateId(r.u32()?));
        }
        if shard_roots.len() != shard_labels.len() {
            return Err(DlnError::corrupt(context, "shard label/root mismatch"));
        }
        let plan = match r.u8()? {
            0 => None,
            1 => {
                let to_seq = r.u64()?;
                let seed = r.u64()?;
                let pre_fp = r.u64()?;
                let plan_labels = read_labels(&mut r, context)?;
                if plan_labels.len() != shard_roots.len() {
                    return Err(DlnError::corrupt(context, "plan shard count mismatch"));
                }
                let n_aff = r.u64()? as usize;
                if n_aff > payload.len() {
                    return Err(DlnError::corrupt(context, "implausible affected count"));
                }
                let mut affected = Vec::with_capacity(n_aff);
                for _ in 0..n_aff {
                    let s = r.u32()?;
                    if s as usize >= shard_roots.len() {
                        return Err(DlnError::corrupt(context, "affected shard out of range"));
                    }
                    affected.push(s);
                }
                let n_moves = r.u64()? as usize;
                if n_moves > payload.len() {
                    return Err(DlnError::corrupt(context, "implausible move count"));
                }
                let mut moves = Vec::with_capacity(n_moves);
                for _ in 0..n_moves {
                    let label = read_string(&mut r, context)?;
                    let from = r.u32()?;
                    let to = r.u32()?;
                    if from as usize >= shard_roots.len() || to as usize >= shard_roots.len() {
                        return Err(DlnError::corrupt(context, "move shard out of range"));
                    }
                    moves.push(PlannedMove { label, from, to });
                }
                Some(PlanState {
                    to_seq,
                    seed,
                    pre_fp,
                    shard_labels: plan_labels,
                    affected,
                    moves,
                })
            }
            b => {
                return Err(DlnError::corrupt(
                    context,
                    format!("bad plan discriminant {b}"),
                ))
            }
        };
        if r.pos() != payload.len() {
            return Err(DlnError::corrupt(context, "trailing bytes"));
        }
        Ok(MaintState {
            cycle,
            applied_seq,
            shard_labels,
            shard_roots,
            plan,
        })
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration of a [`Maintainer`].
#[derive(Clone, Debug)]
pub struct MaintConfig {
    /// Directory for all durable maintenance artifacts (state file,
    /// per-shard search checkpoints, and — unless `DLN_CDC_PATH`
    /// overrides it — the CDC change log). Created if missing.
    pub dir: PathBuf,
    /// Base search configuration for the per-shard incremental searches.
    /// `seed` is re-derived per (cycle, shard) and `shards` /
    /// `checkpoint` / `deadline` are overridden per slice.
    pub search: SearchConfig,
    /// Wall-clock budget per search slice; between slices the maintainer
    /// checks `churn.search_kill` and resumes from the shard's
    /// checkpoint. `None` runs each shard search to completion in one
    /// slice. Defaults to the `DLN_CHURN_DEADLINE_MS` environment
    /// variable.
    pub slice: Option<Duration>,
    /// Rounds between periodic search checkpoints.
    pub ckpt_every: usize,
    /// Minimum centroid-cosine improvement before a label is moved to
    /// another shard. Defaults to the `DLN_REBALANCE_DRIFT` environment
    /// variable, else `0.05`.
    pub rebalance_drift: f64,
    /// Suggested cadence for driver loops: run one cycle every `every`
    /// ingested events. Advisory — the maintainer itself is cadence-free.
    /// Defaults to the `DLN_CHURN_EVERY` environment variable, else 16.
    pub every: u64,
    /// Base path of the CDC change log (snapshot at `<path>`, WAL at
    /// `<path>.wal`). Defaults to `<dir>/cdc`, overridden by the
    /// `DLN_CDC_PATH` environment variable.
    pub cdc_path: Option<PathBuf>,
}

impl MaintConfig {
    /// A configuration rooted at `dir`, with the `DLN_CHURN_EVERY`,
    /// `DLN_CHURN_DEADLINE_MS`, `DLN_REBALANCE_DRIFT` and `DLN_CDC_PATH`
    /// environment overrides applied.
    pub fn new(dir: impl Into<PathBuf>) -> MaintConfig {
        let slice = std::env::var("DLN_CHURN_DEADLINE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis);
        let every = std::env::var("DLN_CHURN_EVERY")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(16);
        let rebalance_drift = std::env::var("DLN_REBALANCE_DRIFT")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|d| d.is_finite())
            .unwrap_or(0.05);
        let cdc_path = std::env::var("DLN_CDC_PATH").ok().map(PathBuf::from);
        MaintConfig {
            dir: dir.into(),
            search: SearchConfig::default(),
            slice,
            ckpt_every: 8,
            rebalance_drift,
            every,
            cdc_path,
        }
    }

    /// Resolved base path of the CDC change log.
    fn cdc_base(&self) -> PathBuf {
        self.cdc_path
            .clone()
            .unwrap_or_else(|| self.dir.join("cdc"))
    }

    fn state_path(&self) -> PathBuf {
        self.dir.join("maint.state")
    }

    fn ckpt_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("maint.s{shard}.ckpt"))
    }
}

// ---------------------------------------------------------------------------
// Maintainer
// ---------------------------------------------------------------------------

/// What one [`Maintainer::advance`] produced.
pub enum MaintAdvance {
    /// Nothing to do: no pending events and no rebalance drift.
    Skipped,
    /// A maintained organization is staged; the caller must publish it
    /// and then call [`Maintainer::mark_published`].
    Staged(Box<MaintStage>),
}

/// A staged maintenance republish: the rebased + re-searched organization
/// over the *post-churn* lake, plus everything the serving layer needs.
pub struct MaintStage {
    /// The organization context over the post-churn lake.
    pub ctx: OrgContext,
    /// The maintained organization (valid against `ctx`).
    pub org: Organization,
    /// Sorted changed slots (removed tag states ∪ appended tag states ∪
    /// shed/strip tombstones ∪ grafted interiors) — the shard-republish
    /// scope. Junctions are excluded so sessions on untouched shards ride
    /// in place.
    pub changed: Vec<u32>,
    /// New shard roots ([`EMPTY_SHARD`] for shards whose labels all
    /// left); pass back to [`Maintainer::mark_published`].
    pub shard_roots: Vec<StateId>,
    /// Fingerprint of `org` (what the published snapshot must carry).
    pub expected_fingerprint: u64,
    /// Events applied by this cycle (`to_seq - applied_seq`).
    pub applied_events: u64,
    /// How many shards were re-searched (vs handled by edge surgery).
    pub searched_shards: usize,
    /// Statistics of the per-shard searches, in affected-shard order.
    pub search_stats: Vec<SearchStats>,
}

/// The crash-safe incremental maintainer. All durable state lives under
/// [`MaintConfig::dir`], so "restart after a crash" is just constructing
/// a new `Maintainer` over the same directory. The maintainer exclusively
/// owns the CDC change log; producers ingest through
/// [`Maintainer::ingest`] and treat the returned sequence number as the
/// durable ack.
pub struct Maintainer<'a> {
    seed_lake: &'a DataLake,
    cfg: MaintConfig,
    log: ChangeLog,
    state: MaintState,
    /// `replay(seed_lake, events ≤ applied_seq)` — the lake the served
    /// organization is built over.
    lake: DataLake,
}

impl<'a> Maintainer<'a> {
    /// Open (or create) a maintainer over `cfg.dir`. `shard_labels` /
    /// `shard_roots` describe the served organization's router layout; a
    /// durable state file from a previous incarnation overrides both (it
    /// tracks committed cycles).
    pub fn open(
        seed_lake: &'a DataLake,
        shard_labels: Vec<Vec<String>>,
        shard_roots: Vec<StateId>,
        cfg: MaintConfig,
    ) -> DlnResult<Maintainer<'a>> {
        if shard_labels.len() != shard_roots.len() {
            return Err(DlnError::InvalidConfig(format!(
                "shard map mismatch: {} label groups vs {} roots",
                shard_labels.len(),
                shard_roots.len()
            )));
        }
        if shard_roots.is_empty() {
            return Err(DlnError::InvalidConfig(
                "maintenance requires at least one shard".to_string(),
            ));
        }
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| DlnError::io(cfg.dir.display().to_string(), e))?;
        let log = ChangeLog::open(&cfg.cdc_base())?;
        let state_path = cfg.state_path();
        let state = if state_path.exists() || persist::prev_path(&state_path).exists() {
            let state = persist::load_with_fallback(&state_path, "maintainer state", |p| {
                let bytes =
                    std::fs::read(p).map_err(|e| DlnError::io(p.display().to_string(), e))?;
                MaintState::decode(&bytes, &p.display().to_string())
            })?;
            if state.shard_roots.len() != shard_roots.len() {
                return Err(DlnError::InvalidConfig(format!(
                    "durable maintainer state has {} shards, caller supplied {}",
                    state.shard_roots.len(),
                    shard_roots.len()
                )));
            }
            state
        } else {
            MaintState {
                cycle: 0,
                applied_seq: 0,
                shard_labels,
                shard_roots,
                plan: None,
            }
        };
        if state.applied_seq > log.last_seq() {
            return Err(DlnError::corrupt(
                state_path.display().to_string(),
                format!(
                    "maintainer state is ahead of the change log ({} > {})",
                    state.applied_seq,
                    log.last_seq()
                ),
            ));
        }
        let (lake, _) = replay(seed_lake, log.events_through(state.applied_seq));
        Ok(Maintainer {
            seed_lake,
            cfg,
            log,
            state,
            lake,
        })
    }

    /// Convenience constructor from a [`ShardedBuild`] over `seed_lake`.
    pub fn for_build(
        seed_lake: &'a DataLake,
        build: &ShardedBuild,
        cfg: MaintConfig,
    ) -> DlnResult<Maintainer<'a>> {
        let labels = build
            .shard_tags
            .iter()
            .map(|tags| {
                tags.iter()
                    .map(|&t| seed_lake.tag(t).label.clone())
                    .collect()
            })
            .collect();
        Maintainer::open(seed_lake, labels, build.shard_roots.clone(), cfg)
    }

    /// Durably append a change event. The returned sequence number is the
    /// ack: on error (torn append) nothing was acknowledged and the event
    /// must be re-ingested.
    pub fn ingest(&mut self, event: &ChangeEvent) -> DlnResult<u64> {
        self.log.append(event)
    }

    /// Events ingested but not yet folded into a committed cycle.
    pub fn pending(&self) -> u64 {
        self.log.last_seq().saturating_sub(self.state.applied_seq)
    }

    /// The lake the served organization is built over:
    /// `replay(seed, events ≤ applied_seq)`.
    pub fn lake(&self) -> &DataLake {
        &self.lake
    }

    /// Completed-cycle counter.
    pub fn cycle(&self) -> u64 {
        self.state.cycle
    }

    /// Last change-log sequence number folded into the served lake.
    pub fn applied_seq(&self) -> u64 {
        self.state.applied_seq
    }

    /// Current shard→labels assignment.
    pub fn shard_labels(&self) -> &[Vec<String>] {
        &self.state.shard_labels
    }

    /// Current shard roots ([`EMPTY_SHARD`] sentinel for emptied shards).
    pub fn shard_roots(&self) -> &[StateId] {
        &self.state.shard_roots
    }

    /// Malformed-but-checksummed events quarantined by the change log.
    pub fn quarantined(&self) -> u64 {
        self.log.quarantined()
    }

    /// The configuration this maintainer runs under.
    pub fn config(&self) -> &MaintConfig {
        &self.cfg
    }

    /// Whether a plan is in flight (a crashed cycle to finish).
    pub fn in_flight(&self) -> bool {
        self.state.plan.is_some()
    }

    fn save_state(&self) -> DlnResult<()> {
        persist::atomic_write(&self.cfg.state_path(), &self.state.encode())
    }

    /// Run the next step of the cycle state machine against the currently
    /// served organization (`ctx`/`org` over [`Maintainer::lake`]). Plans
    /// a cycle if idle (durably, before any mutation), then rebases,
    /// re-searches the affected shards and stages the republish. Errors
    /// are crashes: the durable state is consistent and a new
    /// `Maintainer` over the same directory continues bit-identically.
    pub fn advance(&mut self, ctx: &OrgContext, org: &Organization) -> DlnResult<MaintAdvance> {
        if self.state.plan.is_none() {
            let Some(plan) = self.plan_cycle(org)? else {
                return Ok(MaintAdvance::Skipped);
            };
            self.state.plan = Some(plan);
            self.save_state()?;
            if dln_fault::should_fail("churn.crash_mid_plan") {
                return Err(injected("churn.crash_mid_plan"));
            }
        }
        let Some(plan) = self.state.plan.clone() else {
            return Err(DlnError::corrupt("maintain", "plan vanished mid-advance"));
        };
        if org.fingerprint() != plan.pre_fp {
            return Err(DlnError::corrupt(
                self.cfg.state_path().display().to_string(),
                "served organization diverged from the planned cycle; refusing to apply",
            ));
        }
        // Deterministic recomputation of the post-churn lake and context.
        let (lake_next, _) = replay(self.seed_lake, self.log.events_through(plan.to_seq));
        if lake_next.n_tags() == 0 {
            return Err(DlnError::InvalidConfig(
                "churn removed every tag; refusing to maintain an empty organization".to_string(),
            ));
        }
        let ctx_next = OrgContext::full(&lake_next);
        let mut label_to_new: HashMap<&str, u32> = HashMap::with_capacity(ctx_next.n_tags());
        for (i, t) in ctx_next.tags().iter().enumerate() {
            label_to_new.insert(t.label.as_str(), i as u32);
        }
        let tag_map: Vec<Option<u32>> = ctx
            .tags()
            .iter()
            .map(|t| label_to_new.get(t.label.as_str()).copied())
            .collect();

        let mut out = org.clone();
        if self
            .state
            .shard_roots
            .iter()
            .any(|&r| r != EMPTY_SHARD && r == out.root())
        {
            return Err(DlnError::InvalidConfig(
                "cannot maintain a layout whose shard root is the global root".to_string(),
            ));
        }
        // Junction parents per shard, captured before any surgery (the
        // rebase may unlink a singleton shard root whose tag left).
        let junctions: Vec<Vec<StateId>> = self
            .state
            .shard_roots
            .iter()
            .map(|&r| {
                if r == EMPTY_SHARD {
                    Vec::new()
                } else {
                    out.state(r).parents.clone()
                }
            })
            .collect();
        let report = out.rebase_universe(&ctx_next, &tag_map);
        let mut changed: Vec<u32> = Vec::new();
        changed.extend(&report.removed_tag_slots);
        changed.extend(&report.added_tag_slots);

        // Cheap-donor rebalance: pure edge surgery on donors that keep
        // enough labels to stay structurally sound.
        for m in &plan.moves {
            if plan.affected.contains(&m.from) {
                continue; // donor is re-searched anyway
            }
            let Some(&t_new) = label_to_new.get(m.label.as_str()) else {
                return Err(DlnError::corrupt(
                    "maintain",
                    format!("moved label {:?} missing from the new lake", m.label),
                ));
            };
            let donor_root = self.state.shard_roots[m.from as usize];
            if donor_root == EMPTY_SHARD {
                return Err(DlnError::corrupt(
                    "maintain",
                    format!("move {:?} out of an empty shard {}", m.label, m.from),
                ));
            }
            changed.extend(out.shed_tag_from_subtree(donor_root, t_new));
        }
        if dln_fault::should_fail("churn.crash_mid_apply") {
            return Err(injected("churn.crash_mid_apply"));
        }

        // Re-search and graft the affected shards.
        let mut new_roots = self.state.shard_roots.clone();
        let mut search_stats = Vec::new();
        let mut searched_shards = 0usize;
        for &si in &plan.affected {
            let si_us = si as usize;
            let old_root = self.state.shard_roots[si_us];
            // Strip the old shard subtree. A singleton shard's root is
            // its tag state: nothing to tombstone, but surviving junction
            // edges must go (a removed tag was already unlinked by the
            // rebase; `remove_edge` is a no-op then).
            if old_root != EMPTY_SHARD {
                if out.state(old_root).tag.is_some() {
                    for &j in &junctions[si_us] {
                        out.remove_edge(j, old_root);
                    }
                } else {
                    let mut old_interiors: Vec<StateId> = out
                        .descendants_of(&[old_root])
                        .into_iter()
                        .filter(|&s| out.state(s).tag.is_none())
                        .collect();
                    old_interiors.sort_unstable_by_key(|s| s.0);
                    for &s in &old_interiors {
                        for c in out.state(s).children.clone() {
                            out.remove_edge(s, c);
                        }
                        for p in out.state(s).parents.clone() {
                            out.remove_edge(p, s);
                        }
                        out.set_alive(s, false);
                        changed.push(s.0);
                    }
                }
            }
            let labels = &plan.shard_labels[si_us];
            if labels.is_empty() {
                new_roots[si_us] = EMPTY_SHARD;
                continue;
            }
            if junctions[si_us].is_empty() {
                return Err(DlnError::corrupt(
                    "maintain.graft",
                    format!("shard {si} has labels but no junction parents"),
                ));
            }
            let new_root = if labels.len() == 1 {
                // Singleton shard: the tag state itself is the root,
                // matching the fresh-build layout — no search needed.
                let Some(&t) = label_to_new.get(labels[0].as_str()) else {
                    return Err(DlnError::corrupt(
                        "maintain.graft",
                        format!("label {:?} missing from the new lake", labels[0]),
                    ));
                };
                out.tag_state(t)
            } else {
                let tags_global: Vec<TagId> = labels
                    .iter()
                    .map(|l| {
                        lake_next.tag_by_label(l).ok_or_else(|| {
                            DlnError::corrupt(
                                "maintain.graft",
                                format!("label {l:?} missing from the new lake"),
                            )
                        })
                    })
                    .collect::<DlnResult<_>>()?;
                let seed = derive_cycle_seed(plan.seed, self.state.cycle, si as u64);
                let (sctx, sorg, stats) =
                    self.run_shard_search(si_us, seed, &tags_global, &lake_next)?;
                searched_shards += 1;
                search_stats.push(stats);
                graft_subtree(&mut out, &ctx_next, &sctx, &sorg, &mut changed)?
            };
            for &j in &junctions[si_us] {
                out.add_edge(j, new_root);
            }
            new_roots[si_us] = new_root;
        }

        // Routing tier + memberships last, then validate the whole thing.
        let live_roots: Vec<StateId> = new_roots
            .iter()
            .copied()
            .filter(|&r| r != EMPTY_SHARD)
            .collect();
        if live_roots.is_empty() {
            return Err(DlnError::InvalidConfig(
                "churn emptied every shard; refusing to publish an unrouted organization"
                    .to_string(),
            ));
        }
        out.refresh_routing_tags(&live_roots);
        out.refresh_memberships(&ctx_next);
        out.validate(&ctx_next)
            .map_err(|m| DlnError::corrupt("maintain", m))?;
        if dln_fault::should_fail("churn.crash_mid_publish") {
            return Err(injected("churn.crash_mid_publish"));
        }
        changed.sort_unstable();
        changed.dedup();
        let expected_fingerprint = out.fingerprint();
        Ok(MaintAdvance::Staged(Box::new(MaintStage {
            ctx: ctx_next,
            org: out,
            changed,
            shard_roots: new_roots,
            expected_fingerprint,
            applied_events: plan.to_seq.saturating_sub(self.state.applied_seq),
            searched_shards,
            search_stats,
        })))
    }

    /// Commit a published cycle: adopt the plan's shard assignment and
    /// the staged roots, advance `applied_seq`, bump the cycle counter
    /// (all durably, in one atomic state write), then compact the change
    /// log and discard the per-shard search checkpoints.
    pub fn mark_published(&mut self, shard_roots: &[StateId]) -> DlnResult<()> {
        let Some(plan) = self.state.plan.take() else {
            return Err(DlnError::InvalidConfig(
                "mark_published without an in-flight cycle".to_string(),
            ));
        };
        if shard_roots.len() != self.state.shard_roots.len() {
            return Err(DlnError::InvalidConfig(format!(
                "published {} shard roots, expected {}",
                shard_roots.len(),
                self.state.shard_roots.len()
            )));
        }
        self.state.shard_roots = shard_roots.to_vec();
        self.state.applied_seq = plan.to_seq;
        self.state.shard_labels = plan.shard_labels;
        self.state.cycle += 1;
        self.save_state()?;
        self.log.compact()?;
        for si in 0..self.state.shard_roots.len() {
            let ckpt = self.cfg.ckpt_path(si);
            let _ = std::fs::remove_file(&ckpt);
            let _ = std::fs::remove_file(persist::prev_path(&ckpt));
        }
        let (lake, _) = replay(
            self.seed_lake,
            self.log.events_through(self.state.applied_seq),
        );
        self.lake = lake;
        Ok(())
    }

    /// Plan the next cycle: replay the log to its durable horizon, keep
    /// surviving labels in place, admit new labels into the nearest shard
    /// by topic-centroid cosine, move drifted labels, and mark every
    /// shard whose label set or label populations changed as affected.
    /// Pure function of (change log, shard assignment) — a replanned
    /// crash reproduces the identical plan.
    fn plan_cycle(&self, org: &Organization) -> DlnResult<Option<PlanState>> {
        let to_seq = self.log.last_seq();
        let has_events = to_seq > self.state.applied_seq;
        let (lake_next, _) = replay(self.seed_lake, self.log.events_through(to_seq));
        let n_shards = self.state.shard_labels.len();

        // Labels whose population (set of attributes, identified by
        // table/attr name) changed, plus labels on one side only.
        let changed_labels = diff_labels(&self.lake, &lake_next);

        // Surviving assignment (original order preserved per shard).
        let mut labels_next: Vec<Vec<String>> = Vec::with_capacity(n_shards);
        let mut removed_any = vec![false; n_shards];
        for (i, labels) in self.state.shard_labels.iter().enumerate() {
            let survivors: Vec<String> = labels
                .iter()
                .filter(|l| lake_next.tag_by_label(l).is_some())
                .cloned()
                .collect();
            removed_any[i] = survivors.len() != labels.len();
            labels_next.push(survivors);
        }

        // Shard centroids over the *surviving* pre-move assignment, in
        // the new lake's topic space.
        let dim = lake_next.dim();
        let centroids: Vec<Option<Vec<f64>>> = labels_next
            .iter()
            .map(|labels| {
                if labels.is_empty() {
                    return None;
                }
                let mut c = vec![0.0f64; dim];
                for l in labels {
                    if let Some(t) = lake_next.tag_by_label(l) {
                        for (ci, &v) in c.iter_mut().zip(&lake_next.tag(t).unit_topic) {
                            *ci += v as f64;
                        }
                    }
                }
                Some(c)
            })
            .collect();
        let affinity = |label: &str, shard: usize| -> Option<f64> {
            let c = centroids[shard].as_ref()?;
            let t = lake_next.tag_by_label(label)?;
            let u = &lake_next.tag(t).unit_topic;
            let mut dot = 0.0f64;
            let mut norm = 0.0f64;
            for (&ci, &ui) in c.iter().zip(u) {
                dot += ci * ui as f64;
                norm += ci * ci;
            }
            if norm == 0.0 {
                return Some(0.0);
            }
            Some(dot / norm.sqrt())
        };

        // New labels (in lake order, for determinism) go to the nearest
        // non-empty shard.
        let assigned: HashSet<&str> = labels_next.iter().flatten().map(|l| l.as_str()).collect();
        let mut gained = vec![false; n_shards];
        let mut admissions: Vec<(String, usize)> = Vec::new();
        for tag in lake_next.tags() {
            if assigned.contains(tag.label.as_str()) {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for s in 0..n_shards {
                let Some(a) = affinity(&tag.label, s) else {
                    continue;
                };
                if best.is_none_or(|(_, b)| a > b) {
                    best = Some((s, a));
                }
            }
            let Some((s, _)) = best else {
                return Err(DlnError::InvalidConfig(format!(
                    "no shard can admit new label {:?} (all shards empty)",
                    tag.label
                )));
            };
            admissions.push((tag.label.clone(), s));
            gained[s] = true;
        }

        // Rebalance: a surviving label whose *population changed this
        // cycle* and whose affinity to another shard now exceeds its home
        // affinity by more than the drift threshold moves there. Only
        // changed labels are candidates — the fresh layout is the
        // clusterer's call, and relitigating it on every quiet cycle
        // would thrash shards without new evidence. Affinities use the
        // pre-move centroids, so the decision is order-independent.
        let mut moves: Vec<PlannedMove> = Vec::new();
        if n_shards > 1 {
            for (s, labels) in labels_next.clone().iter().enumerate() {
                for l in labels {
                    if !changed_labels.contains(l) {
                        continue;
                    }
                    let Some(home) = affinity(l, s) else { continue };
                    let mut best: Option<(usize, f64)> = None;
                    for o in 0..n_shards {
                        if o == s {
                            continue;
                        }
                        let Some(a) = affinity(l, o) else { continue };
                        if best.is_none_or(|(_, b)| a > b) {
                            best = Some((o, a));
                        }
                    }
                    if let Some((o, a)) = best {
                        if a - home > self.cfg.rebalance_drift {
                            moves.push(PlannedMove {
                                label: l.clone(),
                                from: s as u32,
                                to: o as u32,
                            });
                            gained[o] = true;
                        }
                    }
                }
            }
        }
        if !has_events && moves.is_empty() {
            return Ok(None);
        }

        // Apply admissions and moves to the assignment.
        for m in &moves {
            labels_next[m.from as usize].retain(|l| l != &m.label);
        }
        for m in &moves {
            labels_next[m.to as usize].push(m.label.clone());
        }
        for (label, s) in admissions {
            labels_next[s].push(label);
        }

        // Affected shards: lost a label to the lake, gained any label, or
        // kept a label whose population changed. A move donor that would
        // be left too thin for pure edge surgery is affected too.
        let mut affected = vec![false; n_shards];
        for s in 0..n_shards {
            if removed_any[s] || gained[s] {
                affected[s] = true;
                continue;
            }
            if labels_next[s].iter().any(|l| changed_labels.contains(l)) {
                affected[s] = true;
            }
        }
        for m in &moves {
            if labels_next[m.from as usize].len() < 2 {
                affected[m.from as usize] = true;
            }
        }
        let affected: Vec<u32> = (0..n_shards as u32)
            .filter(|&s| affected[s as usize])
            .collect();

        Ok(Some(PlanState {
            to_seq,
            seed: derive_cycle_seed(self.cfg.search.seed, self.state.cycle, 0x0063_6875_726e)
                ^ self.state.cycle,
            pre_fp: org.fingerprint(),
            shard_labels: labels_next,
            affected,
            moves,
        }))
    }

    /// Run one affected shard's search to completion across deadline
    /// slices, resuming from the shard's durable checkpoint between
    /// slices (and across maintainer restarts). Bit-identical to one
    /// uninterrupted run.
    fn run_shard_search(
        &self,
        shard: usize,
        seed: u64,
        tags: &[TagId],
        lake_next: &DataLake,
    ) -> DlnResult<(OrgContext, Organization, SearchStats)> {
        let sctx = OrgContext::for_tag_group(lake_next, tags);
        let ckpt_path = self.cfg.ckpt_path(shard);
        loop {
            let mut sorg = init::clustering_org(&sctx);
            let ck = if ckpt_path.exists() || persist::prev_path(&ckpt_path).exists() {
                Checkpoint::load_with_fallback(&ckpt_path).ok()
            } else {
                None
            };
            let prior = ck
                .as_ref()
                .map(|c| Duration::from_nanos(c.elapsed_nanos))
                .unwrap_or(Duration::ZERO);
            let scfg = SearchConfig {
                seed,
                shards: ShardPolicy::Fixed(1),
                table_weights: None,
                deadline: self.cfg.slice.map(|s| prior + s),
                checkpoint: Some(CheckpointConfig {
                    path: ckpt_path.clone(),
                    every_rounds: self.cfg.ckpt_every.max(1),
                }),
                ..self.cfg.search.clone()
            };
            let stats = match &ck {
                Some(ck) => match search::resume(&sctx, &mut sorg, &scfg, ck) {
                    Ok(stats) => stats,
                    Err(e) => {
                        eprintln!(
                            "warning: maintenance checkpoint {} unusable ({e}); restarting shard search",
                            ckpt_path.display()
                        );
                        let _ = std::fs::remove_file(&ckpt_path);
                        let _ = std::fs::remove_file(persist::prev_path(&ckpt_path));
                        sorg = init::clustering_org(&sctx);
                        search::optimize(&sctx, &mut sorg, &scfg)
                    }
                },
                None => search::optimize(&sctx, &mut sorg, &scfg),
            };
            match stats.stop {
                StopReason::Deadline => {
                    if dln_fault::should_fail("churn.search_kill") {
                        return Err(injected("churn.search_kill"));
                    }
                }
                StopReason::Killed => {
                    return Err(injected("search.kill"));
                }
                _ => return Ok((sctx, sorg, stats)),
            }
        }
    }
}

/// Labels whose attribute population differs between the two lakes
/// (including labels present in only one). Populations are compared by
/// (table name, attribute name) pairs — id-independent, so replayed lakes
/// compare meaningfully against their predecessors.
fn diff_labels(cur: &DataLake, next: &DataLake) -> HashSet<String> {
    let pop = |lake: &DataLake, label: &str| -> Option<Vec<(String, String)>> {
        let t = lake.tag_by_label(label)?;
        let mut pairs: Vec<(String, String)> = lake
            .tag(t)
            .attrs
            .iter()
            .map(|&a| {
                let attr = lake.attr(a);
                (lake.table(attr.table).name.clone(), attr.name.clone())
            })
            .collect();
        pairs.sort();
        Some(pairs)
    };
    let mut labels: HashSet<String> = HashSet::new();
    for t in cur.tags() {
        labels.insert(t.label.clone());
    }
    for t in next.tags() {
        labels.insert(t.label.clone());
    }
    labels
        .into_iter()
        .filter(|l| pop(cur, l) != pop(next, l))
        .collect()
}

/// Graft a re-searched shard organization (over `sctx`) into `out`: tag
/// states map onto their existing slots, interiors append as fresh slots
/// in topological order. Unlike the re-optimizer's graft this does *not*
/// validate — the organization stays deliberately inconsistent until the
/// routing tier and memberships are refreshed. Junction linking is the
/// caller's job. Returns the new shard root.
fn graft_subtree(
    out: &mut Organization,
    ctx_next: &OrgContext,
    sctx: &OrgContext,
    sorg: &Organization,
    changed: &mut Vec<u32>,
) -> DlnResult<StateId> {
    let order = sorg.topo_order().to_vec();
    let mut map: HashMap<u32, StateId> = HashMap::with_capacity(order.len());
    for &sid in &order {
        let st = sorg.state(sid);
        let mut full_tags = Vec::with_capacity(st.tags.len());
        for lt in st.tags.iter() {
            let Some(f) = ctx_next.local_tag(sctx.tag(lt).global) else {
                return Err(DlnError::corrupt(
                    "maintain.graft",
                    format!("shard tag {lt} missing from the full context"),
                ));
            };
            full_tags.push(f);
        }
        let mapped = if let Some(lt) = st.tag {
            let Some(f) = ctx_next.local_tag(sctx.tag(lt).global) else {
                return Err(DlnError::corrupt(
                    "maintain.graft",
                    format!("shard tag {lt} missing from the full context"),
                ));
            };
            out.tag_state(f)
        } else {
            let bits = BitSet::from_iter_with_capacity(ctx_next.n_tags(), full_tags);
            let ns = out.add_state(ctx_next, bits, None);
            changed.push(ns.0);
            ns
        };
        map.insert(sid.0, mapped);
    }
    let slot = |s: StateId| -> DlnResult<StateId> {
        map.get(&s.0)
            .copied()
            .ok_or_else(|| DlnError::corrupt("maintain.graft", "unmapped shard state"))
    };
    for &sid in &order {
        let parent = slot(sid)?;
        for &c in &sorg.state(sid).children {
            out.add_edge(parent, slot(c)?);
        }
    }
    slot(sorg.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::build_sharded;
    use dln_lake::{AttrChange, LakeBuilder};
    use dln_synth::TagCloudConfig;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dln-maint-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_setup() -> (DataLake, SearchConfig) {
        let bench = TagCloudConfig::small().generate();
        let cfg = SearchConfig {
            max_iters: 40,
            plateau_iters: 15,
            shards: ShardPolicy::Fixed(2),
            ..SearchConfig::default()
        };
        (bench.lake, cfg)
    }

    fn maint_cfg(dir: PathBuf, search: SearchConfig) -> MaintConfig {
        MaintConfig {
            dir,
            search,
            slice: None,
            ckpt_every: 4,
            rebalance_drift: 0.05,
            every: 16,
            cdc_path: None,
        }
    }

    /// A topic vector concentrated on axis `axis` with a small nudge.
    fn topic(dim: usize, axis: usize, nudge: f32) -> dln_embed::TopicAccumulator {
        let mut v = vec![0.05f32; dim];
        v[axis] = 1.0 + nudge;
        let mut acc = dln_embed::TopicAccumulator::new(dim);
        acc.add(&v);
        acc
    }

    fn added(name: &str, tags: &[&str], axis: usize, nudge: f32) -> ChangeEvent {
        ChangeEvent::TableAdded {
            name: name.to_string(),
            tags: tags.iter().map(|s| s.to_string()).collect(),
            attrs: vec![AttrChange {
                name: "col0".to_string(),
                topic: topic(4, axis, nudge),
                n_values: 8,
                tags: Vec::new(),
            }],
        }
    }

    #[test]
    fn state_roundtrip_with_and_without_plan() {
        let no_plan = MaintState {
            cycle: 3,
            applied_seq: 17,
            shard_labels: vec![vec!["a".into(), "b".into()], vec![]],
            shard_roots: vec![StateId(4), EMPTY_SHARD],
            plan: None,
        };
        let bytes = no_plan.encode();
        let got = MaintState::decode(&bytes, "test").unwrap();
        assert_eq!(got.cycle, 3);
        assert_eq!(got.applied_seq, 17);
        assert_eq!(got.shard_labels, no_plan.shard_labels);
        assert_eq!(got.shard_roots, no_plan.shard_roots);
        assert!(got.plan.is_none());

        let with_plan = MaintState {
            plan: Some(PlanState {
                to_seq: 29,
                seed: 0xDEAD_BEEF,
                pre_fp: 42,
                shard_labels: vec![vec!["a".into()], vec!["b".into(), "c".into()]],
                affected: vec![1],
                moves: vec![PlannedMove {
                    label: "c".into(),
                    from: 0,
                    to: 1,
                }],
            }),
            ..no_plan
        };
        let bytes = with_plan.encode();
        let got = MaintState::decode(&bytes, "test").unwrap();
        assert_eq!(got.plan, with_plan.plan);
    }

    #[test]
    fn every_flipped_byte_is_rejected_or_roundtrips() {
        let state = MaintState {
            cycle: 1,
            applied_seq: 5,
            shard_labels: vec![vec!["x".into()], vec!["y".into(), "z".into()]],
            shard_roots: vec![StateId(7), StateId(9)],
            plan: Some(PlanState {
                to_seq: 9,
                seed: 1,
                pre_fp: 2,
                shard_labels: vec![vec!["x".into()], vec!["y".into(), "z".into()]],
                affected: vec![0, 1],
                moves: vec![],
            }),
        };
        let bytes = state.encode();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xFF;
            // Never panics: either a typed error or (for bytes the format
            // doesn't pin down) a clean decode.
            let _ = MaintState::decode(&corrupted, "flip");
        }
        // And the checksum catches at least the payload bytes.
        let mut corrupted = bytes.clone();
        corrupted[10] ^= 0xFF;
        assert!(MaintState::decode(&corrupted, "flip").is_err());
    }

    #[test]
    fn skipped_when_no_events_and_no_drift() {
        let (lake, scfg) = small_setup();
        let build = build_sharded(&lake, &scfg);
        let dir = tmp("skip");
        let mut maint = Maintainer::for_build(&lake, &build, maint_cfg(dir, scfg.clone())).unwrap();
        let ctx = OrgContext::full(&lake);
        assert!(matches!(
            maint.advance(&ctx, &build.built.organization).unwrap(),
            MaintAdvance::Skipped
        ));
        assert_eq!(maint.pending(), 0);
    }

    #[test]
    fn add_and_remove_cycle_maintains_a_valid_org() {
        let (lake, scfg) = small_setup();
        let build = build_sharded(&lake, &scfg);
        let ctx = OrgContext::full(&lake);
        let dir = tmp("cycle");
        let mut maint = Maintainer::for_build(&lake, &build, maint_cfg(dir, scfg.clone())).unwrap();

        // A new table under a brand-new label plus an existing one.
        let existing = lake.tags()[0].label.clone();
        let dim = lake.dim();
        let ev = ChangeEvent::TableAdded {
            name: "churn_t0".to_string(),
            tags: vec!["churn_new_tag".to_string(), existing.clone()],
            attrs: vec![AttrChange {
                name: "c0".to_string(),
                topic: topic(dim, 0, 0.2),
                n_values: 6,
                tags: Vec::new(),
            }],
        };
        assert_eq!(maint.ingest(&ev).unwrap(), 1);
        assert_eq!(maint.pending(), 1);

        let MaintAdvance::Staged(stage) = maint.advance(&ctx, &build.built.organization).unwrap()
        else {
            panic!("expected staged cycle");
        };
        assert_eq!(stage.applied_events, 1);
        stage.org.validate(&stage.ctx).unwrap();
        assert!(stage.ctx.n_tags() == ctx.n_tags() + 1);
        let roots = stage.shard_roots.clone();
        maint.mark_published(&roots).unwrap();
        assert_eq!(maint.applied_seq(), 1);
        assert_eq!(maint.pending(), 0);
        assert!(maint.lake().tag_by_label("churn_new_tag").is_some());

        // Remove the table again: the brand-new label leaves the lake.
        let org1 = stage.org;
        let ctx1 = stage.ctx;
        maint
            .ingest(&ChangeEvent::TableRemoved {
                name: "churn_t0".to_string(),
            })
            .unwrap();
        let MaintAdvance::Staged(stage2) = maint.advance(&ctx1, &org1).unwrap() else {
            panic!("expected staged cycle");
        };
        stage2.org.validate(&stage2.ctx).unwrap();
        assert_eq!(stage2.ctx.n_tags(), ctx.n_tags());
        let roots2 = stage2.shard_roots.clone();
        maint.mark_published(&roots2).unwrap();
        assert!(maint.lake().tag_by_label("churn_new_tag").is_none());
    }

    #[test]
    fn restart_from_plan_converges_bit_identically() {
        let (lake, scfg) = small_setup();
        let build = build_sharded(&lake, &scfg);
        let ctx = OrgContext::full(&lake);
        let dir = tmp("restart");
        let ev = added("churn_r0", &["churn_r_tag"], 0, 0.3);

        // Uninterrupted run in a sibling directory.
        let dir_ref = tmp("restart-ref");
        let mut a = Maintainer::for_build(&lake, &build, maint_cfg(dir_ref, scfg.clone())).unwrap();
        a.ingest(&ev).unwrap();
        let MaintAdvance::Staged(want) = a.advance(&ctx, &build.built.organization).unwrap() else {
            panic!("expected staged cycle");
        };

        // Crash right after the plan commit, then restart and finish.
        let mut b =
            Maintainer::for_build(&lake, &build, maint_cfg(dir.clone(), scfg.clone())).unwrap();
        b.ingest(&ev).unwrap();
        {
            let _fp = dln_fault::scoped("churn.crash_mid_plan:1.0:0");
            assert!(b.advance(&ctx, &build.built.organization).is_err());
        }
        drop(b);
        let mut b2 = Maintainer::for_build(&lake, &build, maint_cfg(dir, scfg)).unwrap();
        assert!(b2.in_flight());
        let MaintAdvance::Staged(got) = b2.advance(&ctx, &build.built.organization).unwrap() else {
            panic!("expected staged cycle");
        };
        assert_eq!(got.expected_fingerprint, want.expected_fingerprint);
        assert_eq!(got.changed, want.changed);
        assert_eq!(got.shard_roots, want.shard_roots);
    }

    #[test]
    fn drifted_label_moves_with_cheap_donor_shed() {
        // Hand-built lake: shard-split topics on axes 0 and 1. Labels
        // a0/a1/drift sit on axis 0; b0/b1 on axis 1. Churn replaces
        // drift's only table with an axis-1 table, so its topic crosses
        // the centroid gap and the planner must move it — donor keeps
        // two labels, so the move is pure edge surgery on the donor.
        let dim = 4;
        let mut lb = LakeBuilder::new(dim);
        let mut add_table = |name: &str, label: &str, axis: usize, nudge: f32| {
            let tid = lb.begin_table(name);
            lb.add_tag(tid, label);
            lb.try_add_attribute_raw(tid, "c0", topic(dim, axis, nudge), 8, Vec::new())
                .unwrap();
        };
        add_table("ta0", "a0", 0, 0.00);
        add_table("ta1", "a1", 0, 0.05);
        add_table("tdrift", "drift", 0, 0.10);
        add_table("tb0", "b0", 1, 0.00);
        add_table("tb1", "b1", 1, 0.05);
        let lake = lb.build();
        let scfg = SearchConfig {
            max_iters: 40,
            plateau_iters: 15,
            shards: ShardPolicy::Fixed(2),
            ..SearchConfig::default()
        };
        let build = build_sharded(&lake, &scfg);
        // The clustering split must put drift with the a-labels.
        let drift_shard = build
            .shard_tags
            .iter()
            .position(|tags| tags.iter().any(|&t| lake.tag(t).label == "drift"))
            .unwrap();
        let a0_shard = build
            .shard_tags
            .iter()
            .position(|tags| tags.iter().any(|&t| lake.tag(t).label == "a0"))
            .unwrap();
        assert_eq!(
            drift_shard, a0_shard,
            "seed layout puts drift with a-labels"
        );

        let ctx = OrgContext::full(&lake);
        let dir = tmp("drift");
        let mut maint = Maintainer::for_build(&lake, &build, maint_cfg(dir, scfg.clone())).unwrap();
        maint
            .ingest(&ChangeEvent::TableRemoved {
                name: "tdrift".to_string(),
            })
            .unwrap();
        maint
            .ingest(&added("tdrift2", &["drift"], 1, 0.10))
            .unwrap();

        let MaintAdvance::Staged(stage) = maint.advance(&ctx, &build.built.organization).unwrap()
        else {
            panic!("expected staged cycle");
        };
        stage.org.validate(&stage.ctx).unwrap();
        // Donor was not re-searched: only the receiver shard was.
        assert_eq!(stage.searched_shards, 1);
        let roots = stage.shard_roots.clone();
        maint.mark_published(&roots).unwrap();
        let donor = drift_shard;
        let receiver = 1 - donor;
        assert!(
            !maint.shard_labels()[donor].iter().any(|l| l == "drift"),
            "drift left the donor shard: {:?}",
            maint.shard_labels()
        );
        assert!(
            maint.shard_labels()[receiver].iter().any(|l| l == "drift"),
            "drift joined the receiver shard: {:?}",
            maint.shard_labels()
        );
    }
}
