//! The success-probability evaluation measure (§4.2).
//!
//! The paper's experiments simulate a user who has a table in mind and
//! navigates toward states closest to its attributes. A navigation is
//! *successful* if it finds an attribute of the table **or a sufficiently
//! similar attribute**:
//!
//! ```text
//! Success(A|O) = 1 − Π over {Aᵢ : κ(Aᵢ, A) ≥ θ} of (1 − P(Aᵢ|O))
//! Success(T|O) = 1 − Π over {A ∈ T}            of (1 − Success(A|O))
//! ```
//!
//! with κ the cosine similarity of attribute topic vectors and θ = 0.9.
//! Figure 2 reports `Success(T|O)` for every table, sorted ascending.

use dln_embed::dot;
use dln_lake::{AttrId, DataLake, TableId};

/// Default similarity threshold used by the paper (§4.2).
pub const DEFAULT_THETA: f32 = 0.9;

/// For each attribute, the attributes whose topic-vector cosine similarity
/// is at least `theta` (always includes the attribute itself when it has a
/// topic vector). Brute-force all-pairs, fanned out over `n_threads`.
pub fn similar_sets(lake: &DataLake, theta: f32, n_threads: usize) -> Vec<Vec<AttrId>> {
    let n = lake.n_attrs();
    let mut out: Vec<Vec<AttrId>> = vec![Vec::new(); n];
    if n == 0 {
        return out;
    }
    let n_threads = n_threads.max(1).min(n);
    let chunk = n.div_ceil(n_threads);
    let chunks: Vec<(usize, &mut [Vec<AttrId>])> = out.chunks_mut(chunk).enumerate().collect();
    std::thread::scope(|scope| {
        for (ci, slot) in chunks {
            let start = ci * chunk;
            scope.spawn(move || {
                for (i, set) in slot.iter_mut().enumerate() {
                    let a = AttrId((start + i) as u32);
                    let ua = &lake.attr(a).unit_topic;
                    if !lake.attr(a).has_topic() {
                        continue; // zero vector is similar to nothing
                    }
                    for b in lake.attr_ids() {
                        if !lake.attr(b).has_topic() {
                            continue;
                        }
                        if dot(ua, &lake.attr(b).unit_topic) >= theta {
                            set.push(b);
                        }
                    }
                }
            });
        }
    });
    out
}

/// The sorted per-table success curve of Figure 2.
#[derive(Clone, Debug)]
pub struct SuccessCurve {
    /// `(table, Success(T|O))`, sorted by ascending success probability —
    /// the x-axis order of Figure 2.
    pub per_table: Vec<(TableId, f64)>,
    /// Mean success probability over all tables.
    pub mean: f64,
    /// The θ threshold used.
    pub theta: f32,
}

impl SuccessCurve {
    /// The success values only, in curve (ascending) order.
    pub fn values(&self) -> Vec<f64> {
        self.per_table.iter().map(|(_, v)| *v).collect()
    }

    /// Number of tables with success below `cut` (the "hard tail" the
    /// enrichment experiment of §4.3.1 targets).
    pub fn n_below(&self, cut: f64) -> usize {
        self.per_table.iter().filter(|(_, v)| *v < cut).count()
    }
}

/// Per-attribute success probabilities given per-attribute discovery
/// probabilities (`attr_disc[global attr] = P(A|O)`, 0.0 for attributes the
/// organization cannot reach).
pub fn attr_success(lake: &DataLake, attr_disc: &[f64], theta: f32, n_threads: usize) -> Vec<f64> {
    assert_eq!(attr_disc.len(), lake.n_attrs(), "one prob per attribute");
    let sets = similar_sets(lake, theta, n_threads);
    sets.iter()
        .map(|set| {
            let miss: f64 = set.iter().map(|b| 1.0 - attr_disc[b.index()]).product();
            1.0 - miss
        })
        .collect()
}

/// Compute the Figure 2 success curve over every table of the lake.
pub fn success_curve(
    lake: &DataLake,
    attr_disc: &[f64],
    theta: f32,
    n_threads: usize,
) -> SuccessCurve {
    let a_succ = attr_success(lake, attr_disc, theta, n_threads);
    let mut per_table: Vec<(TableId, f64)> = lake
        .table_ids()
        .map(|t| {
            let miss: f64 = lake
                .table(t)
                .attrs
                .iter()
                .map(|a| 1.0 - a_succ[a.index()])
                .product();
            (t, 1.0 - miss)
        })
        .collect();
    per_table.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let mean = if per_table.is_empty() {
        0.0
    } else {
        per_table.iter().map(|(_, v)| v).sum::<f64>() / per_table.len() as f64
    };
    SuccessCurve {
        per_table,
        mean,
        theta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_synth::TagCloudConfig;

    fn lake() -> DataLake {
        TagCloudConfig::small().generate().lake
    }

    #[test]
    fn similar_sets_include_self() {
        let lake = lake();
        let sets = similar_sets(&lake, 0.9, 2);
        for a in lake.attr_ids() {
            assert!(
                sets[a.index()].contains(&a),
                "attr {a:?} must be similar to itself"
            );
        }
    }

    #[test]
    fn similar_sets_mostly_same_tag() {
        // In TagCloud, attributes of the same tag share their top-k domain
        // prefix, so θ-similar attributes should mostly share the tag.
        let bench = TagCloudConfig::small().generate();
        let lake = &bench.lake;
        let sets = similar_sets(lake, 0.9, 2);
        let mut same = 0usize;
        let mut total = 0usize;
        for a in lake.attr_ids() {
            for &b in &sets[a.index()] {
                total += 1;
                if bench.true_tag[a.index()] == bench.true_tag[b.index()] {
                    same += 1;
                }
            }
        }
        assert!(
            same as f64 / total as f64 > 0.9,
            "θ=0.9 neighbours should share tags ({same}/{total})"
        );
    }

    #[test]
    fn success_exceeds_discovery() {
        // Success composes over similar attributes, so it dominates the
        // single-attribute discovery probability.
        let lake = lake();
        let disc: Vec<f64> = (0..lake.n_attrs()).map(|i| (i % 7) as f64 * 0.01).collect();
        let succ = attr_success(&lake, &disc, 0.9, 2);
        for a in lake.attr_ids() {
            assert!(succ[a.index()] >= disc[a.index()] - 1e-12);
            assert!((0.0..=1.0).contains(&succ[a.index()]));
        }
    }

    #[test]
    fn curve_is_sorted_and_mean_consistent() {
        let lake = lake();
        let disc: Vec<f64> = (0..lake.n_attrs())
            .map(|i| (i % 11) as f64 * 0.02)
            .collect();
        let curve = success_curve(&lake, &disc, 0.9, 2);
        assert_eq!(curve.per_table.len(), lake.n_tables());
        for w in curve.per_table.windows(2) {
            assert!(w[0].1 <= w[1].1, "curve must ascend");
        }
        let mean: f64 =
            curve.per_table.iter().map(|(_, v)| v).sum::<f64>() / lake.n_tables() as f64;
        assert!((curve.mean - mean).abs() < 1e-12);
    }

    #[test]
    fn zero_discovery_gives_zero_success() {
        let lake = lake();
        let disc = vec![0.0; lake.n_attrs()];
        let curve = success_curve(&lake, &disc, 0.9, 2);
        assert!(curve.mean.abs() < 1e-12);
        assert_eq!(curve.n_below(0.5), lake.n_tables());
    }

    #[test]
    fn full_discovery_gives_full_success() {
        let lake = lake();
        let disc = vec![1.0; lake.n_attrs()];
        let curve = success_curve(&lake, &disc, 0.9, 2);
        assert!((curve.mean - 1.0).abs() < 1e-12);
        assert_eq!(curve.n_below(0.5), 0);
    }

    #[test]
    fn theta_one_tightens_sets() {
        let lake = lake();
        let loose = similar_sets(&lake, 0.5, 2);
        let tight = similar_sets(&lake, 0.999, 2);
        let nl: usize = loose.iter().map(Vec::len).sum();
        let nt: usize = tight.iter().map(Vec::len).sum();
        assert!(nt <= nl);
    }

    #[test]
    fn values_accessor_matches_curve() {
        let lake = lake();
        let disc = vec![0.1; lake.n_attrs()];
        let curve = success_curve(&lake, &disc, 0.9, 1);
        assert_eq!(curve.values().len(), lake.n_tables());
    }
}
