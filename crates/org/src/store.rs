//! The persistent zero-copy organization store (DESIGN.md §5g).
//!
//! Everything a serving fleet needs to *open a lake* — the context
//! universe, the organization DAG, the cached topological order and
//! per-state child-topic matrices, the navigation-model parameters, and
//! secondary point-lookup indexes — in **one file of aligned fixed-width
//! little-endian sections**, so a process maps it and serves from
//! borrowed `&[u32]`/`&[f32]` slices with near-zero deserialization.
//! At the paper's scale the CSV rebuild takes hours; opening a store is
//! validation + page faults.
//!
//! ## File format (version 1)
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic "DLNSTOR\x01" · u32 version · u32 n_sections ·         │
//! │ u64 file_len · section table (n × 32 B: id, pad, offset,     │
//! │ len, FNV-1a checksum) · u64 header checksum                  │
//! ├── zero padding to the next 64-byte boundary ─────────────────┤
//! │ section 1 payload (offset ≡ 0 mod 64)                        │
//! ├── zero padding ──────────────────────────────────────────────┤
//! │ section 2 payload …                                          │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Integrity is checked **once at open**: magic/version/length, the
//! header checksum, every per-section checksum, section alignment and
//! bounds, zero inter-section padding (so *every* byte of the file is
//! covered by some check), and cross-section structural invariants (CSR
//! monotonicity, id ranges, UTF-8 labels). Any violation is a typed
//! [`DlnError::Corrupt`]; after open, accessors are infallible slice
//! views. Publication reuses the shared [`crate::persist`] protocol
//! (`<path>.tmp` + fsync + rename, `.prev` rotation), and the
//! `store.torn` failpoint truncates the encoded buffer pre-write exactly
//! like `checkpoint.torn`.
//!
//! The `store.mmap` failpoint (or `DLN_STORE_MMAP=0`) forces the
//! heap-copy fallback used on hosts without `mmap`; both backings serve
//! the same bytes through the same [`OrgView`] accessors.

use std::path::Path;

use dln_fault::{DlnError, DlnResult};
use dln_lake::{TableId, TagId};

use crate::ctx::OrgContext;
use crate::eval::NavConfig;
use crate::graph::{Organization, StateId};
use crate::persist;
use crate::view::OrgView;

/// File magic (8 bytes, includes a format generation byte).
const MAGIC: &[u8; 8] = b"DLNSTOR\x01";
/// Format version, bumped on any layout change.
const VERSION: u32 = 1;
/// Section payload alignment (cache-line sized; element soundness only
/// needs 8, but 64 keeps hot sections line-aligned).
const ALIGN: usize = 64;

// Section ids. The table must contain exactly these, in this order.
const SEC_META: u32 = 1;
const SEC_TAG_LABEL_OFFS: u32 = 2;
const SEC_TAG_LABEL_BYTES: u32 = 3;
const SEC_TAG_ATTR_OFFS: u32 = 4;
const SEC_TAG_ATTR_DATA: u32 = 5;
const SEC_TAG_STATES: u32 = 6;
const SEC_ATTR_TABLE: u32 = 7;
const SEC_ATTR_UNITS: u32 = 8;
const SEC_TABLE_GLOBAL: u32 = 9;
const SEC_TABLE_ATTR_OFFS: u32 = 10;
const SEC_TABLE_ATTR_DATA: u32 = 11;
const SEC_STATE_TAG: u32 = 12;
const SEC_STATE_ALIVE: u32 = 13;
const SEC_STATE_TAG_WORDS: u32 = 14;
const SEC_STATE_ATTR_WORDS: u32 = 15;
const SEC_STATE_UNITS: u32 = 16;
const SEC_CHILD_OFFS: u32 = 17;
const SEC_CHILD_DATA: u32 = 18;
const SEC_PARENT_OFFS: u32 = 19;
const SEC_PARENT_DATA: u32 = 20;
const SEC_TOPO: u32 = 21;
const SEC_LEVELS: u32 = 22;
const SEC_CHILD_MAT: u32 = 23;
const SEC_IDX_TAG_BY_GLOBAL: u32 = 24;
const SEC_IDX_TABLE_BY_GLOBAL: u32 = 25;
const SEC_IDX_TABLE_STATES_OFFS: u32 = 26;
const SEC_IDX_TABLE_STATES_DATA: u32 = 27;
/// Number of sections in a version-1 store.
const N_SECTIONS: usize = 27;

/// Fixed u64 slots of the META section.
const META_WORDS: usize = 11;

/// Element width of a section's payload (1 = bytes, 4 = u32/f32, 8 = u64).
fn elem_size(id: u32) -> usize {
    match id {
        SEC_TAG_LABEL_BYTES | SEC_STATE_ALIVE => 1,
        SEC_META | SEC_STATE_TAG_WORDS | SEC_STATE_ATTR_WORDS => 8,
        _ => 4,
    }
}

/// Header size in bytes: fixed fields + section table + header checksum.
fn header_size() -> usize {
    8 + 4 + 4 + 8 + N_SECTIONS * 32 + 8
}

fn align_up(v: usize) -> usize {
    v.div_ceil(ALIGN) * ALIGN
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u32(v: &mut Vec<u8>, x: u32) {
    v.extend_from_slice(&x.to_le_bytes());
}
fn push_u64(v: &mut Vec<u8>, x: u64) {
    v.extend_from_slice(&x.to_le_bytes());
}
fn push_f32s(v: &mut Vec<u8>, xs: &[f32]) {
    for &x in xs {
        v.extend_from_slice(&x.to_le_bytes());
    }
}

/// A u32 CSR: offsets (len `n + 1`) and concatenated data.
fn csr<'a>(lists: impl Iterator<Item = &'a [u32]>) -> (Vec<u8>, Vec<u8>) {
    let mut offs = Vec::new();
    let mut data = Vec::new();
    let mut total = 0u32;
    push_u32(&mut offs, 0);
    for list in lists {
        for &x in list {
            push_u32(&mut data, x);
        }
        total += list.len() as u32;
        push_u32(&mut offs, total);
    }
    (offs, data)
}

/// Serialize a complete serving snapshot to the store wire format
/// (header, section table, checksums, aligned payloads — the exact bytes
/// [`open_store`] maps).
pub fn encode_store(ctx: &OrgContext, org: &Organization, nav: NavConfig) -> Vec<u8> {
    let dim = ctx.dim();
    let n_tags = ctx.n_tags();
    let n_attrs = ctx.n_attrs();
    let n_tables = ctx.n_tables();
    let n_slots = org.n_slots();
    let tw = n_tags.div_ceil(64);
    let aw = n_attrs.div_ceil(64);
    let topo = org.topo_order();

    let mut sections: Vec<Vec<u8>> = Vec::with_capacity(N_SECTIONS);

    // 1 META
    let mut meta = Vec::with_capacity(META_WORDS * 8);
    for v in [
        dim as u64,
        n_tags as u64,
        n_attrs as u64,
        n_tables as u64,
        n_slots as u64,
        org.root().0 as u64,
        tw as u64,
        aw as u64,
        nav.gamma.to_bits() as u64,
        org.fingerprint(),
        topo.len() as u64,
    ] {
        push_u64(&mut meta, v);
    }
    sections.push(meta);

    // 2–3 tag labels (byte-offset CSR + UTF-8 blob)
    let mut label_offs = Vec::new();
    let mut label_blob = Vec::new();
    push_u32(&mut label_offs, 0);
    for t in 0..n_tags as u32 {
        label_blob.extend_from_slice(ctx.tag(t).label.as_bytes());
        push_u32(&mut label_offs, label_blob.len() as u32);
    }
    sections.push(label_offs);
    sections.push(label_blob);

    // 4–5 tag → attrs CSR
    let (offs, data) = csr((0..n_tags as u32).map(|t| ctx.tag(t).attrs.as_slice()));
    sections.push(offs);
    sections.push(data);

    // 6 tag states
    let mut tag_states = Vec::with_capacity(n_tags * 4);
    for t in 0..n_tags as u32 {
        push_u32(&mut tag_states, org.tag_state(t).0);
    }
    sections.push(tag_states);

    // 7 attr → table
    let mut attr_table = Vec::with_capacity(n_attrs * 4);
    for a in 0..n_attrs as u32 {
        push_u32(&mut attr_table, ctx.attr(a).table);
    }
    sections.push(attr_table);

    // 8 attr unit-topic matrix (row-major n_attrs × dim)
    let mut attr_units = Vec::with_capacity(n_attrs * dim * 4);
    for a in 0..n_attrs as u32 {
        push_f32s(&mut attr_units, ctx.attr_unit(a));
    }
    sections.push(attr_units);

    // 9 table globals
    let mut table_global = Vec::with_capacity(n_tables * 4);
    for table in ctx.tables() {
        push_u32(&mut table_global, table.global.0);
    }
    sections.push(table_global);

    // 10–11 table → attrs CSR
    let (offs, data) = csr(ctx.tables().iter().map(|t| t.attrs.as_slice()));
    sections.push(offs);
    sections.push(data);

    // 12 state tag (u32::MAX = interior state)
    let mut state_tag = Vec::with_capacity(n_slots * 4);
    for s in 0..n_slots {
        push_u32(
            &mut state_tag,
            org.state(StateId(s as u32)).tag.unwrap_or(u32::MAX),
        );
    }
    sections.push(state_tag);

    // 13 alive flags
    let alive: Vec<u8> = (0..n_slots)
        .map(|s| org.state(StateId(s as u32)).alive as u8)
        .collect();
    sections.push(alive);

    // 14–15 fixed-width tag/attr word rows
    let mut tag_words = Vec::with_capacity(n_slots * tw * 8);
    let mut attr_words = Vec::with_capacity(n_slots * aw * 8);
    for s in 0..n_slots {
        let st = org.state(StateId(s as u32));
        debug_assert_eq!(st.tags.words().len(), tw);
        debug_assert_eq!(st.attrs.words().len(), aw);
        for &w in st.tags.words() {
            push_u64(&mut tag_words, w);
        }
        for &w in st.attrs.words() {
            push_u64(&mut attr_words, w);
        }
    }
    sections.push(tag_words);
    sections.push(attr_words);

    // 16 state unit topics (row-major n_slots × dim)
    let mut state_units = Vec::with_capacity(n_slots * dim * 4);
    for s in 0..n_slots {
        push_f32s(&mut state_units, &org.state(StateId(s as u32)).unit_topic);
    }
    sections.push(state_units);

    // 17–20 child / parent CSRs (StateId is repr(transparent) over u32,
    // but encode explicitly to keep the writer layout-independent)
    let child_lists: Vec<Vec<u32>> = (0..n_slots)
        .map(|s| {
            org.state(StateId(s as u32))
                .children
                .iter()
                .map(|c| c.0)
                .collect()
        })
        .collect();
    let (offs, data) = csr(child_lists.iter().map(|l| l.as_slice()));
    sections.push(offs);
    sections.push(data);
    let parent_lists: Vec<Vec<u32>> = (0..n_slots)
        .map(|s| {
            org.state(StateId(s as u32))
                .parents
                .iter()
                .map(|p| p.0)
                .collect()
        })
        .collect();
    let (offs, data) = csr(parent_lists.iter().map(|l| l.as_slice()));
    sections.push(offs);
    sections.push(data);

    // 21 cached topological order
    let mut topo_bytes = Vec::with_capacity(topo.len() * 4);
    for s in topo {
        push_u32(&mut topo_bytes, s.0);
    }
    sections.push(topo_bytes);

    // 22 BFS levels
    let mut level_bytes = Vec::with_capacity(n_slots * 4);
    for &l in org.levels() {
        push_u32(&mut level_bytes, l);
    }
    sections.push(level_bytes);

    // 23 child unit-topic matrices: row-major, rows in children order per
    // state, state s's block at child_offs[s] × dim. Saved from the same
    // f32 bits as the states' unit topics, so the Eq 1 ranking over a
    // mapped snapshot is bit-identical to the in-memory cached path.
    let total_children: usize = child_lists.iter().map(|l| l.len()).sum();
    let mut child_mat = Vec::with_capacity(total_children * dim * 4);
    for list in &child_lists {
        for &c in list {
            push_f32s(&mut child_mat, &org.state(StateId(c)).unit_topic);
        }
    }
    sections.push(child_mat);

    // 24 secondary index: global tag id → local tag, sorted pairs
    let mut tag_pairs: Vec<(u32, u32)> = (0..n_tags as u32)
        .map(|t| (ctx.tag(t).global.0, t))
        .collect();
    tag_pairs.sort_unstable();
    let mut idx_tag = Vec::with_capacity(tag_pairs.len() * 8);
    for (g, l) in &tag_pairs {
        push_u32(&mut idx_tag, *g);
        push_u32(&mut idx_tag, *l);
    }
    sections.push(idx_tag);

    // 25 secondary index: global table id → local table, sorted pairs
    let mut table_pairs: Vec<(u32, u32)> = ctx
        .tables()
        .iter()
        .enumerate()
        .map(|(ti, t)| (t.global.0, ti as u32))
        .collect();
    table_pairs.sort_unstable();
    let mut idx_table = Vec::with_capacity(table_pairs.len() * 8);
    for (g, l) in &table_pairs {
        push_u32(&mut idx_table, *g);
        push_u32(&mut idx_table, *l);
    }
    sections.push(idx_table);

    // 26–27 secondary index: local table → tag states that discover it
    // (a table is discovered at a tag state whose tag's population
    // intersects the table, §4.3.4)
    let mut table_states: Vec<Vec<u32>> = vec![Vec::new(); n_tables];
    for t in 0..n_tags as u32 {
        let ts = org.tag_state(t).0;
        for &a in &ctx.tag(t).attrs {
            table_states[ctx.attr(a).table as usize].push(ts);
        }
    }
    for v in &mut table_states {
        v.sort_unstable();
        v.dedup();
    }
    let (offs, data) = csr(table_states.iter().map(|l| l.as_slice()));
    sections.push(offs);
    sections.push(data);

    debug_assert_eq!(sections.len(), N_SECTIONS);

    // Layout: 64-aligned offsets, then the header with checksums.
    let mut offsets = Vec::with_capacity(N_SECTIONS);
    let mut at = align_up(header_size());
    for s in &sections {
        offsets.push(at);
        at += s.len();
        at = align_up(at);
    }
    let file_len = offsets
        .last()
        .zip(sections.last())
        .map(|(o, s)| o + s.len())
        .unwrap_or_else(|| align_up(header_size()));

    let mut out = Vec::with_capacity(file_len);
    out.extend_from_slice(MAGIC);
    push_u32(&mut out, VERSION);
    push_u32(&mut out, N_SECTIONS as u32);
    push_u64(&mut out, file_len as u64);
    for (i, s) in sections.iter().enumerate() {
        push_u32(&mut out, (i + 1) as u32);
        push_u32(&mut out, 0);
        push_u64(&mut out, offsets[i] as u64);
        push_u64(&mut out, s.len() as u64);
        push_u64(&mut out, persist::fnv1a(s));
    }
    let header_checksum = persist::fnv1a(&out);
    push_u64(&mut out, header_checksum);
    for (i, s) in sections.iter().enumerate() {
        out.resize(offsets[i], 0);
        out.extend_from_slice(s);
    }
    debug_assert_eq!(out.len(), file_len);
    out
}

/// Atomically write the snapshot `(ctx, org, nav)` as a store file at
/// `path` (shared [`persist::atomic_write`] protocol: `<path>.tmp` +
/// fsync + rename, previous generation rotated to `<path>.prev`).
///
/// Fault-injection site `store.torn`: when it fires, the encoded buffer
/// is truncated before hitting the filesystem — the resulting file fails
/// validation on open exactly like a real partial write.
pub fn save_store(
    path: &Path,
    ctx: &OrgContext,
    org: &Organization,
    nav: NavConfig,
) -> DlnResult<()> {
    write_store_bytes(path, encode_store(ctx, org, nav))
}

fn write_store_bytes(path: &Path, mut buf: Vec<u8>) -> DlnResult<()> {
    if dln_fault::should_fail("store.torn") {
        let keep = buf.len() * 2 / 3;
        eprintln!(
            "warning: injected torn store write on {} ({keep} of {} bytes)",
            path.display(),
            buf.len()
        );
        buf.truncate(keep);
    }
    persist::atomic_write(path, &buf)
}

// ---------------------------------------------------------------------------
// Mapping
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mmap_ffi {
    use std::ffi::c_void;
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
    }
}

enum Backing {
    /// A read-only private memory map of the file.
    #[cfg(unix)]
    Mmap {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    /// Heap copy, `u64`-backed so the base pointer is 8-byte aligned and
    /// every 64-aligned section offset stays element-aligned.
    Heap { words: Vec<u64>, len: usize },
}

/// The read-only byte backing of an open store: an `mmap` of the file
/// where available, else an aligned heap copy. Dropping it unmaps.
pub struct Mapping {
    backing: Backing,
}

// SAFETY: the mapping is read-only for its whole lifetime (PROT_READ,
// MAP_PRIVATE) and the heap variant is never mutated after construction.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mmap { ptr, len } = self.backing {
            // SAFETY: ptr/len are exactly what mmap returned.
            unsafe {
                mmap_ffi::munmap(ptr, len);
            }
        }
    }
}

impl Mapping {
    /// The mapped (or copied) file bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mmap { ptr, len } => {
                // SAFETY: the map covers len readable bytes for self's
                // lifetime.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            Backing::Heap { words, len } => {
                // SAFETY: words holds at least len initialized bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
        }
    }

    /// True when backed by a real memory map (false = heap fallback).
    pub fn is_mmap(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mmap { .. } => true,
            Backing::Heap { .. } => false,
        }
    }

    fn heap_from_vec(bytes: Vec<u8>) -> Mapping {
        let len = bytes.len();
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the destination is len.div_ceil(8)*8 ≥ len bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), words.as_mut_ptr() as *mut u8, len);
        }
        Mapping {
            backing: Backing::Heap { words, len },
        }
    }

    fn heap_from_file(path: &Path) -> DlnResult<Mapping> {
        let bytes = std::fs::read(path)
            .map_err(|e| DlnError::io(format!("reading {}", path.display()), e))?;
        Ok(Mapping::heap_from_vec(bytes))
    }

    /// Map `path` read-only. The `store.mmap` failpoint and
    /// `DLN_STORE_MMAP=0` force the heap fallback; a real `mmap` failure
    /// also falls back rather than erroring.
    pub fn from_file(path: &Path) -> DlnResult<Mapping> {
        if dln_fault::should_fail("store.mmap")
            || std::env::var("DLN_STORE_MMAP").is_ok_and(|v| v.trim() == "0")
        {
            return Mapping::heap_from_file(path);
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)
                .map_err(|e| DlnError::io(format!("opening {}", path.display()), e))?;
            let len = file
                .metadata()
                .map_err(|e| DlnError::io(format!("stat {}", path.display()), e))?
                .len() as usize;
            if len == 0 {
                return Err(DlnError::corrupt(
                    path.display().to_string(),
                    "empty store file",
                ));
            }
            // SAFETY: fd is valid for the call; we request a fresh
            // read-only private mapping of len bytes.
            let ptr = unsafe {
                mmap_ffi::mmap(
                    std::ptr::null_mut(),
                    len,
                    mmap_ffi::PROT_READ,
                    mmap_ffi::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                // MAP_FAILED: degrade to the heap copy.
                return Mapping::heap_from_file(path);
            }
            Ok(Mapping {
                backing: Backing::Mmap { ptr, len },
            })
        }
        #[cfg(not(unix))]
        Mapping::heap_from_file(path)
    }
}

// ---------------------------------------------------------------------------
// Open + validation
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct SecRange {
    off: usize,
    len: usize,
}

/// A complete serving snapshot opened *by reference* from a store file:
/// every accessor is a borrowed slice into the mapping, validated once at
/// construction. Implements [`OrgView`], so the serving layer treats it
/// exactly like an in-memory snapshot.
pub struct MappedSnapshot {
    map: Mapping,
    sections: [SecRange; N_SECTIONS],
    dim: usize,
    n_tags: usize,
    n_attrs: usize,
    n_tables: usize,
    n_slots: usize,
    root: StateId,
    tw: usize,
    aw: usize,
    nav: NavConfig,
    fingerprint: u64,
}

fn corrupt(context: &str, msg: impl Into<String>) -> DlnError {
    DlnError::corrupt(context, msg.into())
}

fn le_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}
fn le_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        b[at],
        b[at + 1],
        b[at + 2],
        b[at + 3],
        b[at + 4],
        b[at + 5],
        b[at + 6],
        b[at + 7],
    ])
}

/// Reinterpret an element-aligned byte slice. `pre`/`suf` are empty by
/// the open-time alignment validation; the debug assert guards refactors.
fn cast_slice<T: Copy>(b: &[u8]) -> &[T] {
    // SAFETY: alignment and length divisibility validated at open; T is
    // one of u32/f32/u64 (plain-old-data).
    let (pre, mid, suf) = unsafe { b.align_to::<T>() };
    debug_assert!(pre.is_empty() && suf.is_empty());
    mid
}

/// Binary search a sorted `(key, value)` u32-pair section.
fn pair_lookup(pairs: &[u32], key: u32) -> Option<u32> {
    let n = pairs.len() / 2;
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pairs[2 * mid] < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo < n && pairs[2 * lo] == key).then(|| pairs[2 * lo + 1])
}

/// Validate that `offs` is a monotone CSR offset array ending at
/// `data_len`, with `n + 1` entries.
fn check_csr(context: &str, name: &str, offs: &[u32], n: usize, data_len: usize) -> DlnResult<()> {
    if offs.len() != n + 1 {
        return Err(corrupt(
            context,
            format!("{name}: {} offsets for {} rows", offs.len(), n),
        ));
    }
    if offs.first() != Some(&0) {
        return Err(corrupt(
            context,
            format!("{name}: offsets do not start at 0"),
        ));
    }
    if offs.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt(context, format!("{name}: offsets not monotone")));
    }
    if offs.last().copied().unwrap_or(0) as usize != data_len {
        return Err(corrupt(
            context,
            format!(
                "{name}: offsets end at {} but data holds {}",
                offs.last().copied().unwrap_or(0),
                data_len
            ),
        ));
    }
    Ok(())
}

impl MappedSnapshot {
    /// Validate and adopt a mapping as a snapshot. All structural checks
    /// happen here; accessors afterwards are plain slice views.
    pub fn from_mapping(map: Mapping, context: &str) -> DlnResult<MappedSnapshot> {
        let b = map.bytes();
        if b.len() < header_size() {
            return Err(corrupt(
                context,
                format!("{} bytes is too short for a store header", b.len()),
            ));
        }
        if &b[..8] != MAGIC {
            return Err(corrupt(context, "bad magic"));
        }
        let version = le_u32(b, 8);
        if version != VERSION {
            return Err(corrupt(
                context,
                format!("unsupported store version {version} (expected {VERSION})"),
            ));
        }
        let n_sections = le_u32(b, 12) as usize;
        if n_sections != N_SECTIONS {
            return Err(corrupt(
                context,
                format!("expected {N_SECTIONS} sections, header claims {n_sections}"),
            ));
        }
        let file_len = le_u64(b, 16) as usize;
        if file_len != b.len() {
            return Err(corrupt(
                context,
                format!("file is {} bytes but header claims {file_len}", b.len()),
            ));
        }
        let table_end = header_size() - 8;
        let stored_hdr = le_u64(b, table_end);
        let computed_hdr = persist::fnv1a(&b[..table_end]);
        if stored_hdr != computed_hdr {
            return Err(corrupt(
                context,
                format!(
                    "header checksum mismatch (stored {stored_hdr:#x}, computed {computed_hdr:#x})"
                ),
            ));
        }
        // Section table: ids 1..=N in order, aligned, in-bounds,
        // non-overlapping, checksummed payloads, zero padding between.
        let mut sections = [SecRange { off: 0, len: 0 }; N_SECTIONS];
        let mut prev_end = header_size();
        for (i, slot) in sections.iter_mut().enumerate() {
            let e = 24 + i * 32;
            let id = le_u32(b, e);
            let pad = le_u32(b, e + 4);
            let off = le_u64(b, e + 8) as usize;
            let len = le_u64(b, e + 16) as usize;
            let checksum = le_u64(b, e + 24);
            if id as usize != i + 1 || pad != 0 {
                return Err(corrupt(
                    context,
                    format!("section table entry {i} malformed"),
                ));
            }
            if !off.is_multiple_of(ALIGN) {
                return Err(corrupt(
                    context,
                    format!("section {id} offset {off} unaligned"),
                ));
            }
            if off < prev_end || off.checked_add(len).is_none_or(|end| end > b.len()) {
                return Err(corrupt(
                    context,
                    format!("section {id} [{off}, {off}+{len}) out of bounds or overlapping"),
                ));
            }
            if !len.is_multiple_of(elem_size(id)) {
                return Err(corrupt(
                    context,
                    format!("section {id} length {len} not a multiple of its element size"),
                ));
            }
            if b[prev_end..off].iter().any(|&x| x != 0) {
                return Err(corrupt(
                    context,
                    format!("nonzero padding before section {id}"),
                ));
            }
            let computed = persist::fnv1a(&b[off..off + len]);
            if computed != checksum {
                return Err(corrupt(
                    context,
                    format!(
                        "section {id} checksum mismatch (stored {checksum:#x}, computed {computed:#x}) — torn or corrupt write"
                    ),
                ));
            }
            *slot = SecRange { off, len };
            prev_end = off + len;
        }
        if prev_end != b.len() {
            return Err(corrupt(
                context,
                format!(
                    "{} trailing bytes after the last section",
                    b.len() - prev_end
                ),
            ));
        }

        let sec = |id: u32| -> &[u8] {
            let r = sections[(id - 1) as usize];
            &b[r.off..r.off + r.len]
        };
        let sec_u32 = |id: u32| -> &[u32] { cast_slice::<u32>(sec(id)) };
        let sec_u64 = |id: u32| -> &[u64] { cast_slice::<u64>(sec(id)) };

        // META + cross-section shape checks.
        let meta = sec_u64(SEC_META);
        if meta.len() != META_WORDS {
            return Err(corrupt(context, format!("META holds {} words", meta.len())));
        }
        let dim = meta[0] as usize;
        let n_tags = meta[1] as usize;
        let n_attrs = meta[2] as usize;
        let n_tables = meta[3] as usize;
        let n_slots = meta[4] as usize;
        let root = meta[5];
        let tw = meta[6] as usize;
        let aw = meta[7] as usize;
        let gamma = f32::from_bits(meta[8] as u32);
        let fingerprint = meta[9];
        let topo_len = meta[10] as usize;
        if tw != n_tags.div_ceil(64) || aw != n_attrs.div_ceil(64) {
            return Err(corrupt(context, "META word widths disagree with set sizes"));
        }
        if n_slots == 0 || root as usize >= n_slots {
            return Err(corrupt(
                context,
                format!("root {root} outside {n_slots} slots"),
            ));
        }
        if !gamma.is_finite() || gamma <= 0.0 {
            return Err(corrupt(context, format!("non-positive nav gamma {gamma}")));
        }

        let expect_elems = |id: u32, want: usize, what: &str| -> DlnResult<()> {
            let have = sections[(id - 1) as usize].len / elem_size(id);
            if have != want {
                return Err(corrupt(
                    context,
                    format!("{what}: section {id} holds {have} elements, expected {want}"),
                ));
            }
            Ok(())
        };
        expect_elems(SEC_TAG_LABEL_OFFS, n_tags + 1, "tag labels")?;
        expect_elems(SEC_TAG_ATTR_OFFS, n_tags + 1, "tag attrs")?;
        expect_elems(SEC_TAG_STATES, n_tags, "tag states")?;
        expect_elems(SEC_ATTR_TABLE, n_attrs, "attr tables")?;
        expect_elems(SEC_ATTR_UNITS, n_attrs * dim, "attr units")?;
        expect_elems(SEC_TABLE_GLOBAL, n_tables, "table globals")?;
        expect_elems(SEC_TABLE_ATTR_OFFS, n_tables + 1, "table attrs")?;
        expect_elems(SEC_STATE_TAG, n_slots, "state tags")?;
        expect_elems(SEC_STATE_ALIVE, n_slots, "alive flags")?;
        expect_elems(SEC_STATE_TAG_WORDS, n_slots * tw, "state tag words")?;
        expect_elems(SEC_STATE_ATTR_WORDS, n_slots * aw, "state attr words")?;
        expect_elems(SEC_STATE_UNITS, n_slots * dim, "state units")?;
        expect_elems(SEC_CHILD_OFFS, n_slots + 1, "child offsets")?;
        expect_elems(SEC_PARENT_OFFS, n_slots + 1, "parent offsets")?;
        expect_elems(SEC_TOPO, topo_len, "topo order")?;
        expect_elems(SEC_LEVELS, n_slots, "levels")?;
        expect_elems(SEC_IDX_TAG_BY_GLOBAL, 2 * n_tags, "tag index")?;
        expect_elems(SEC_IDX_TABLE_BY_GLOBAL, 2 * n_tables, "table index")?;
        expect_elems(
            SEC_IDX_TABLE_STATES_OFFS,
            n_tables + 1,
            "table-states index",
        )?;

        // CSR integrity.
        let label_offs = sec_u32(SEC_TAG_LABEL_OFFS);
        check_csr(
            context,
            "tag labels",
            label_offs,
            n_tags,
            sec(SEC_TAG_LABEL_BYTES).len(),
        )?;
        let blob = sec(SEC_TAG_LABEL_BYTES);
        for t in 0..n_tags {
            let (s, e) = (label_offs[t] as usize, label_offs[t + 1] as usize);
            if std::str::from_utf8(&blob[s..e]).is_err() {
                return Err(corrupt(context, format!("tag {t} label is not UTF-8")));
            }
        }
        check_csr(
            context,
            "tag attrs",
            sec_u32(SEC_TAG_ATTR_OFFS),
            n_tags,
            sec_u32(SEC_TAG_ATTR_DATA).len(),
        )?;
        check_csr(
            context,
            "table attrs",
            sec_u32(SEC_TABLE_ATTR_OFFS),
            n_tables,
            sec_u32(SEC_TABLE_ATTR_DATA).len(),
        )?;
        check_csr(
            context,
            "children",
            sec_u32(SEC_CHILD_OFFS),
            n_slots,
            sec_u32(SEC_CHILD_DATA).len(),
        )?;
        check_csr(
            context,
            "parents",
            sec_u32(SEC_PARENT_OFFS),
            n_slots,
            sec_u32(SEC_PARENT_DATA).len(),
        )?;
        check_csr(
            context,
            "table states",
            sec_u32(SEC_IDX_TABLE_STATES_OFFS),
            n_tables,
            sec_u32(SEC_IDX_TABLE_STATES_DATA).len(),
        )?;
        expect_elems(
            SEC_CHILD_MAT,
            sec_u32(SEC_CHILD_DATA).len() * dim,
            "child matrices",
        )?;

        // Id range checks: after these, every accessor index is in
        // bounds by construction.
        let in_range = |what: &str, vals: &[u32], bound: usize| -> DlnResult<()> {
            if vals.iter().any(|&v| v as usize >= bound) {
                return Err(corrupt(
                    context,
                    format!("{what}: id out of range (≥ {bound})"),
                ));
            }
            Ok(())
        };
        in_range("tag attrs", sec_u32(SEC_TAG_ATTR_DATA), n_attrs)?;
        in_range("tag states", sec_u32(SEC_TAG_STATES), n_slots)?;
        in_range("attr tables", sec_u32(SEC_ATTR_TABLE), n_tables.max(1))?;
        in_range("table attrs", sec_u32(SEC_TABLE_ATTR_DATA), n_attrs)?;
        in_range("children", sec_u32(SEC_CHILD_DATA), n_slots)?;
        in_range("parents", sec_u32(SEC_PARENT_DATA), n_slots)?;
        in_range("topo", sec_u32(SEC_TOPO), n_slots)?;
        in_range("table states", sec_u32(SEC_IDX_TABLE_STATES_DATA), n_slots)?;
        if sec_u32(SEC_STATE_TAG)
            .iter()
            .any(|&t| t != u32::MAX && t as usize >= n_tags)
        {
            return Err(corrupt(context, "state tag out of range"));
        }
        for (name, id, n, bound) in [
            ("tag index", SEC_IDX_TAG_BY_GLOBAL, n_tags, n_tags),
            ("table index", SEC_IDX_TABLE_BY_GLOBAL, n_tables, n_tables),
        ] {
            let pairs = sec_u32(id);
            for i in 0..n {
                if pairs[2 * i + 1] as usize >= bound {
                    return Err(corrupt(context, format!("{name}: value out of range")));
                }
                if i > 0 && pairs[2 * (i - 1)] >= pairs[2 * i] {
                    return Err(corrupt(
                        context,
                        format!("{name}: keys not strictly sorted"),
                    ));
                }
            }
        }

        Ok(MappedSnapshot {
            sections,
            dim,
            n_tags,
            n_attrs,
            n_tables,
            n_slots,
            root: StateId(root as u32),
            tw,
            aw,
            nav: NavConfig { gamma },
            fingerprint,
            map,
        })
    }

    #[inline]
    fn sec(&self, id: u32) -> &[u8] {
        let r = self.sections[(id - 1) as usize];
        &self.map.bytes()[r.off..r.off + r.len]
    }
    #[inline]
    fn sec_u32(&self, id: u32) -> &[u32] {
        cast_slice::<u32>(self.sec(id))
    }
    #[inline]
    fn sec_u64(&self, id: u32) -> &[u64] {
        cast_slice::<u64>(self.sec(id))
    }
    #[inline]
    fn sec_f32(&self, id: u32) -> &[f32] {
        cast_slice::<f32>(self.sec(id))
    }
    /// `&[u32]` → `&[StateId]` (sound: `StateId` is `repr(transparent)`).
    #[inline]
    fn as_states(ids: &[u32]) -> &[StateId] {
        // SAFETY: StateId is repr(transparent) over u32.
        unsafe { std::slice::from_raw_parts(ids.as_ptr() as *const StateId, ids.len()) }
    }
    #[inline]
    fn csr_row<'a>(&self, offs_id: u32, data: &'a [u32], row: usize) -> &'a [u32] {
        let offs = self.sec_u32(offs_id);
        &data[offs[row] as usize..offs[row + 1] as usize]
    }

    /// Navigation-model parameters the snapshot was saved with.
    #[inline]
    pub fn nav(&self) -> NavConfig {
        self.nav
    }

    /// Fingerprint of the organization at save time
    /// ([`Organization::fingerprint`]).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Total file size in bytes.
    pub fn n_bytes(&self) -> usize {
        self.map.bytes().len()
    }

    /// True when served from a real memory map (false = heap fallback).
    pub fn is_mmap(&self) -> bool {
        self.map.is_mmap()
    }

    /// BFS level of every slot (`u32::MAX` = dead or unreachable), as
    /// cached at save time.
    pub fn levels(&self) -> &[u32] {
        self.sec_u32(SEC_LEVELS)
    }

    /// O(log n) point lookup: the tag state of a lake-global tag id, via
    /// the sorted secondary index built at save time.
    pub fn state_of_global_tag(&self, tag: TagId) -> Option<StateId> {
        let local = pair_lookup(self.sec_u32(SEC_IDX_TAG_BY_GLOBAL), tag.0)?;
        Some(StateId(self.sec_u32(SEC_TAG_STATES)[local as usize]))
    }

    /// O(log n) point lookup: the local table id of a lake-global table.
    pub fn local_table_of(&self, table: TableId) -> Option<u32> {
        pair_lookup(self.sec_u32(SEC_IDX_TABLE_BY_GLOBAL), table.0)
    }

    /// The tag states that can discover local table `ti` (sorted; a table
    /// is discovered at the sinks of tags its attributes carry, §4.3.4).
    pub fn states_for_table(&self, ti: u32) -> &[StateId] {
        Self::as_states(self.csr_row(
            SEC_IDX_TABLE_STATES_OFFS,
            self.sec_u32(SEC_IDX_TABLE_STATES_DATA),
            ti as usize,
        ))
    }

    /// Re-publish this snapshot's exact bytes at `path` (atomic write +
    /// rotation; `store.torn` applies). Useful for copying an opened
    /// store without re-encoding.
    pub fn save_to(&self, path: &Path) -> DlnResult<()> {
        write_store_bytes(path, self.map.bytes().to_vec())
    }
}

impl OrgView for MappedSnapshot {
    fn dim(&self) -> usize {
        self.dim
    }
    fn n_tags(&self) -> usize {
        self.n_tags
    }
    fn n_attrs(&self) -> usize {
        self.n_attrs
    }
    fn n_tables(&self) -> usize {
        self.n_tables
    }
    fn n_slots(&self) -> usize {
        self.n_slots
    }
    fn root(&self) -> StateId {
        self.root
    }
    fn alive(&self, sid: StateId) -> bool {
        self.sec(SEC_STATE_ALIVE)[sid.index()] != 0
    }
    fn state_tag(&self, sid: StateId) -> Option<u32> {
        match self.sec_u32(SEC_STATE_TAG)[sid.index()] {
            u32::MAX => None,
            t => Some(t),
        }
    }
    fn children(&self, sid: StateId) -> &[StateId] {
        Self::as_states(self.csr_row(SEC_CHILD_OFFS, self.sec_u32(SEC_CHILD_DATA), sid.index()))
    }
    fn parents(&self, sid: StateId) -> &[StateId] {
        Self::as_states(self.csr_row(SEC_PARENT_OFFS, self.sec_u32(SEC_PARENT_DATA), sid.index()))
    }
    fn state_tag_words(&self, sid: StateId) -> &[u64] {
        let w = self.sec_u64(SEC_STATE_TAG_WORDS);
        &w[sid.index() * self.tw..(sid.index() + 1) * self.tw]
    }
    fn state_attr_words(&self, sid: StateId) -> &[u64] {
        let w = self.sec_u64(SEC_STATE_ATTR_WORDS);
        &w[sid.index() * self.aw..(sid.index() + 1) * self.aw]
    }
    fn state_unit_topic(&self, sid: StateId) -> &[f32] {
        let u = self.sec_f32(SEC_STATE_UNITS);
        &u[sid.index() * self.dim..(sid.index() + 1) * self.dim]
    }
    fn child_mat(&self, sid: StateId) -> Option<&[f32]> {
        let offs = self.sec_u32(SEC_CHILD_OFFS);
        let mat = self.sec_f32(SEC_CHILD_MAT);
        Some(&mat[offs[sid.index()] as usize * self.dim..offs[sid.index() + 1] as usize * self.dim])
    }
    fn topo_order(&self) -> &[StateId] {
        Self::as_states(self.sec_u32(SEC_TOPO))
    }
    fn tag_label(&self, t: u32) -> &str {
        let offs = self.sec_u32(SEC_TAG_LABEL_OFFS);
        let blob = self.sec(SEC_TAG_LABEL_BYTES);
        // UTF-8 validated at open; the fallback is unreachable.
        std::str::from_utf8(&blob[offs[t as usize] as usize..offs[t as usize + 1] as usize])
            .unwrap_or("")
    }
    fn tag_attrs(&self, t: u32) -> &[u32] {
        self.csr_row(
            SEC_TAG_ATTR_OFFS,
            self.sec_u32(SEC_TAG_ATTR_DATA),
            t as usize,
        )
    }
    fn tag_state(&self, t: u32) -> StateId {
        StateId(self.sec_u32(SEC_TAG_STATES)[t as usize])
    }
    fn table_global(&self, ti: u32) -> TableId {
        TableId(self.sec_u32(SEC_TABLE_GLOBAL)[ti as usize])
    }
    fn table_attrs(&self, ti: u32) -> &[u32] {
        self.csr_row(
            SEC_TABLE_ATTR_OFFS,
            self.sec_u32(SEC_TABLE_ATTR_DATA),
            ti as usize,
        )
    }
    fn attr_unit(&self, a: u32) -> &[f32] {
        let u = self.sec_f32(SEC_ATTR_UNITS);
        &u[a as usize * self.dim..(a as usize + 1) * self.dim]
    }
    fn attr_table(&self, a: u32) -> u32 {
        self.sec_u32(SEC_ATTR_TABLE)[a as usize]
    }
}

/// Open the store at `path`: map it (or heap-copy under the `store.mmap`
/// failpoint / `DLN_STORE_MMAP=0`) and validate every check described in
/// the module docs. Torn, truncated, or corrupted files fail with a
/// typed [`DlnError::Corrupt`].
pub fn open_store(path: &Path) -> DlnResult<MappedSnapshot> {
    let map = Mapping::from_file(path)?;
    MappedSnapshot::from_mapping(map, &path.display().to_string())
}

/// [`open_store`], falling back to the rotated previous generation
/// (`<path>.prev`) when the newest file is unusable — the same
/// one-generation torn-write story as checkpoints.
pub fn open_store_with_fallback(path: &Path) -> DlnResult<MappedSnapshot> {
    persist::load_with_fallback(path, "organization store", open_store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::clustering_org;
    use crate::view::OwnedSnap;
    use dln_synth::TagCloudConfig;
    use std::sync::Arc;

    fn fixture() -> (OrgContext, Organization) {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        (ctx, org)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dln_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_views_agree_everywhere() {
        let (ctx, org) = fixture();
        let nav = NavConfig { gamma: 17.5 };
        let path = tmp("roundtrip.dlnstore");
        save_store(&path, &ctx, &org, nav).unwrap();
        let mapped = open_store(&path).unwrap();
        let owned = OwnedSnap {
            ctx: Arc::new(ctx),
            org: Arc::new(org),
        };
        assert_eq!(mapped.nav().gamma.to_bits(), nav.gamma.to_bits());
        assert_eq!(mapped.fingerprint(), owned.org.fingerprint());
        assert_eq!(mapped.dim(), owned.dim());
        assert_eq!(mapped.n_tags(), owned.n_tags());
        assert_eq!(mapped.n_attrs(), owned.n_attrs());
        assert_eq!(mapped.n_tables(), owned.n_tables());
        assert_eq!(mapped.n_slots(), owned.n_slots());
        assert_eq!(mapped.root(), owned.root());
        assert_eq!(mapped.topo_order(), owned.org.topo_order());
        assert_eq!(mapped.levels(), owned.org.levels());
        for s in 0..owned.n_slots() as u32 {
            let sid = StateId(s);
            assert_eq!(mapped.alive(sid), owned.alive(sid));
            assert_eq!(mapped.state_tag(sid), owned.state_tag(sid));
            assert_eq!(mapped.children(sid), owned.children(sid));
            assert_eq!(mapped.parents(sid), owned.parents(sid));
            assert_eq!(mapped.state_tag_words(sid), owned.state_tag_words(sid));
            assert_eq!(mapped.state_attr_words(sid), owned.state_attr_words(sid));
            // f32 sections: exact bits.
            let (mu, ou) = (mapped.state_unit_topic(sid), owned.state_unit_topic(sid));
            assert_eq!(mu.len(), ou.len());
            assert!(mu.iter().zip(ou).all(|(a, b)| a.to_bits() == b.to_bits()));
            assert_eq!(mapped.label_of(sid, 2), owned.label_of(sid, 2));
            // The stored child matrix is the row-gather of child topics.
            let mat = mapped.child_mat(sid).unwrap();
            let gather: Vec<f32> = owned
                .children(sid)
                .iter()
                .flat_map(|&c| owned.state_unit_topic(c).to_vec())
                .collect();
            assert_eq!(mat.len(), gather.len());
            assert!(mat
                .iter()
                .zip(&gather)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        for t in 0..owned.n_tags() as u32 {
            assert_eq!(mapped.tag_label(t), owned.tag_label(t));
            assert_eq!(mapped.tag_attrs(t), owned.tag_attrs(t));
            assert_eq!(mapped.tag_state(t), owned.tag_state(t));
        }
        for ti in 0..owned.n_tables() as u32 {
            assert_eq!(mapped.table_global(ti), owned.table_global(ti));
            assert_eq!(mapped.table_attrs(ti), owned.table_attrs(ti));
        }
        for a in 0..owned.n_attrs() as u32 {
            assert_eq!(mapped.attr_table(a), owned.attr_table(a));
            let (mu, ou) = (mapped.attr_unit(a), owned.attr_unit(a));
            assert!(mu.iter().zip(ou).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn secondary_indexes_answer_point_lookups() {
        let (ctx, org) = fixture();
        let path = tmp("index.dlnstore");
        save_store(&path, &ctx, &org, NavConfig::default()).unwrap();
        let mapped = open_store(&path).unwrap();
        for t in 0..ctx.n_tags() as u32 {
            let global = ctx.tag(t).global;
            assert_eq!(mapped.state_of_global_tag(global), Some(org.tag_state(t)));
        }
        assert_eq!(mapped.state_of_global_tag(TagId(u32::MAX - 1)), None);
        for (ti, table) in ctx.tables().iter().enumerate() {
            assert_eq!(mapped.local_table_of(table.global), Some(ti as u32));
            let states = mapped.states_for_table(ti as u32);
            assert!(!states.is_empty(), "every context table is discoverable");
            assert!(states.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            // Every listed state is a tag state whose tag touches the table.
            for &s in states {
                let t = mapped.state_tag(s).expect("index lists tag states");
                assert!(ctx
                    .tag(t)
                    .attrs
                    .iter()
                    .any(|&a| ctx.attr(a).table as usize == ti));
            }
        }
        assert_eq!(mapped.local_table_of(TableId(u32::MAX - 1)), None);
    }

    #[test]
    fn heap_fallback_serves_identical_bytes() {
        let (ctx, org) = fixture();
        let path = tmp("fallback.dlnstore");
        save_store(&path, &ctx, &org, NavConfig::default()).unwrap();
        let mapped = open_store(&path).unwrap();
        let heaped = {
            let _fp = dln_fault::scoped("store.mmap:1.0:0").unwrap();
            open_store(&path).unwrap()
        };
        assert!(!heaped.is_mmap());
        assert_eq!(mapped.map.bytes(), heaped.map.bytes());
        assert_eq!(
            mapped.children(mapped.root()),
            heaped.children(heaped.root())
        );
    }

    #[test]
    fn empty_and_tiny_files_are_typed_corrupt() {
        let path = tmp("tiny.dlnstore");
        for bytes in [&b""[..], b"DLNSTOR\x01", &[0u8; 128]] {
            std::fs::write(&path, bytes).unwrap();
            match open_store(&path) {
                Err(DlnError::Corrupt { .. }) => {}
                Err(e) => panic!("{} bytes: wrong error {e}", bytes.len()),
                Ok(_) => panic!("{} bytes: opened", bytes.len()),
            }
        }
    }

    #[test]
    fn torn_write_fails_open_but_prev_generation_survives() {
        let (ctx, org) = fixture();
        let path = tmp("torn.dlnstore");
        save_store(&path, &ctx, &org, NavConfig { gamma: 1.0 }).unwrap();
        {
            let _fp = dln_fault::scoped("store.torn:1.0:0").unwrap();
            save_store(&path, &ctx, &org, NavConfig { gamma: 2.0 }).unwrap();
        }
        assert!(matches!(open_store(&path), Err(DlnError::Corrupt { .. })));
        let recovered = open_store_with_fallback(&path).unwrap();
        assert_eq!(
            recovered.nav().gamma,
            1.0,
            "fallback serves the previous generation"
        );
    }
}
