//! Crash-safe feedback-driven re-optimization: the background loop that
//! closes §2.4 of the paper.
//!
//! A [`Reoptimizer`] runs *epoch-committed cycles* against a served
//! organization:
//!
//! 1. **Drain** — the service's merged [`NavigationLog`] is appended to a
//!    durable, checksummed on-disk [`EvidenceLog`] (WAL-style frames over
//!    [`crate::persist`], atomic snapshot rotation, torn tails truncated
//!    on recovery). The drain is *ack-after-durable*: the service only
//!    subtracts what the evidence log reports written, so a torn append
//!    loses nothing and a repeated drain double-counts nothing.
//! 2. **Plan** — cumulative evidence is propagated through the current
//!    organization ([`NavigationLog::blended_transitions`] over a uniform
//!    prior) to find the shard users hit hardest; per-table demand weights
//!    spread each visited state's walk mass over its member tags. The
//!    plan (shard, derived
//!    seed, weights, pre-cycle fingerprint) is durably committed before
//!    any search work, so a crashed cycle replans to the identical plan.
//! 3. **Search** — a deadline-bounded, checkpointed local search
//!    ([`crate::search`]) over *only the affected shard's* tag group,
//!    with [`SearchConfig::table_weights`] steering Eq 6 toward the
//!    tables users actually look for. Kill-and-restart resumes from the
//!    periodic checkpoint and converges bit-identically.
//! 4. **Publish** — the re-optimized shard subtree is grafted back under
//!    the router ([`Advance::Staged`]); the serving layer swaps it in as a
//!    *shard-level republish* so sessions pinned to untouched shards are
//!    never migrated. Only after the publish does [`Reoptimizer::
//!    mark_published`] commit the cycle and compact the evidence log.
//!
//! Every phase boundary is a crash point covered by a failpoint
//! (`reopt.log_torn`, `reopt.crash_mid_cycle`, `reopt.crash_mid_publish`,
//! `reopt.search_kill` — see the catalog in `dln-fault`). The invariant,
//! enforced by `tests/reopt_chaos.rs`: for any failpoint schedule, a
//! killed optimizer restarted from its durable state converges to the
//! bit-identical organization of an uninterrupted run, never tears a
//! served snapshot, and never loses or double-counts evidence.
//!
//! [`SearchConfig::table_weights`]: crate::search::SearchConfig

use std::cmp::Ordering;
use std::collections::HashMap;
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

use dln_fault::{DlnError, DlnResult};
use dln_lake::{DataLake, TagId};

use crate::bitset::BitSet;
use crate::checkpoint::{Checkpoint, CheckpointConfig};
use crate::ctx::OrgContext;
use crate::feedback::NavigationLog;
use crate::graph::{Organization, StateId};
use crate::init;
use crate::persist;
use crate::search::{self, SearchConfig, SearchStats, ShardPolicy, StopReason};
use crate::shard::ShardedBuild;

/// Magic prefix of an evidence-log snapshot file.
const SNAP_MAGIC: &[u8; 8] = b"DLNEVSNP";
/// Evidence-log snapshot format version.
const SNAP_VERSION: u8 = 1;
/// Magic prefix of the durable optimizer state file.
const STATE_MAGIC: &[u8; 8] = b"DLNREOPT";
/// Optimizer state format version.
const STATE_VERSION: u8 = 1;

/// The typed error for an injected optimizer crash at `site` — the
/// in-process stand-in for `kill -9` at a phase boundary.
fn injected(site: &str) -> DlnError {
    DlnError::io(
        site.to_string(),
        std::io::Error::other(format!("injected optimizer crash at {site}")),
    )
}

// ---------------------------------------------------------------------------
// Evidence log
// ---------------------------------------------------------------------------

/// Durable navigation evidence: a compacted snapshot plus a WAL tail.
///
/// On disk this is two files derived from one base path:
///
/// * `<base>` — the **snapshot**: a sealed record (`DLNEVSNP`, version,
///   last compacted sequence number, serialized [`NavigationLog`])
///   published with [`persist::atomic_write`], so one previous generation
///   always survives at `<base>.prev`.
/// * `<base>.wal` — the **WAL**: appended frames, each
///   `[len:u64][body][fnv1a(body):u64]` with `body = [seq:u64][log
///   bytes]`, fsynced per append. A torn tail (the last frame cut short
///   or failing its checksum) is truncated on open with a warning —
///   everything before it is intact by construction.
///
/// Each committed cycle calls [`compact`](Self::compact): the cumulative
/// log is atomically rewritten as the new snapshot (carrying the last
/// sequence number) and the WAL is truncated. A crash between the two
/// steps is safe: frames whose sequence number the snapshot already
/// covers are skipped on open.
///
/// Fault-injection site `reopt.log_torn`: an append writes only the
/// first ⅔ of its frame, fsyncs, and reports [`DlnError::Corrupt`] — the
/// caller must *not* acknowledge the drain. The next append (or the next
/// open) discards the torn tail.
pub struct EvidenceLog {
    snap_path: PathBuf,
    wal_path: PathBuf,
    cumulative: NavigationLog,
    /// Last sequence number merged into `cumulative`.
    last_seq: u64,
    /// Last sequence number covered by the on-disk snapshot.
    snap_seq: u64,
    /// Length of the known-valid WAL prefix (bytes).
    clean_len: u64,
}

impl EvidenceLog {
    /// Open (or create) the evidence log rooted at `base`; torn WAL tails
    /// are truncated, a torn snapshot falls back to `<base>.prev`.
    pub fn open(base: &Path) -> DlnResult<EvidenceLog> {
        let snap_path = base.to_path_buf();
        let mut wal_os = base.as_os_str().to_os_string();
        wal_os.push(".wal");
        let wal_path = PathBuf::from(wal_os);

        let (mut cumulative, snap_seq) =
            if snap_path.exists() || persist::prev_path(&snap_path).exists() {
                persist::load_with_fallback(&snap_path, "evidence snapshot", Self::load_snapshot)?
            } else {
                (NavigationLog::new(), 0)
            };

        let mut last_seq = snap_seq;
        let mut clean_len = 0u64;
        if wal_path.exists() {
            let bytes = std::fs::read(&wal_path)
                .map_err(|e| DlnError::io(wal_path.display().to_string(), e))?;
            let context = wal_path.display().to_string();
            let mut pos = 0usize;
            loop {
                if pos + 8 > bytes.len() {
                    break; // clean end or torn length word
                }
                let len = u64::from_le_bytes(
                    bytes[pos..pos + 8]
                        .try_into()
                        .map_err(|_| DlnError::corrupt(&context, "frame length"))?,
                ) as usize;
                let Some(frame_end) = pos
                    .checked_add(8)
                    .and_then(|p| p.checked_add(len))
                    .and_then(|p| p.checked_add(8))
                else {
                    break; // implausible length — torn tail
                };
                if frame_end > bytes.len() {
                    break; // torn tail
                }
                let body = &bytes[pos + 8..pos + 8 + len];
                let stored = u64::from_le_bytes(
                    bytes[pos + 8 + len..frame_end]
                        .try_into()
                        .map_err(|_| DlnError::corrupt(&context, "frame checksum"))?,
                );
                if persist::fnv1a(body) != stored {
                    break; // torn or corrupt frame — truncate here
                }
                let mut r = persist::Reader::new(body, 0, &context);
                let seq = r.u64()?;
                let delta = match NavigationLog::decode(&body[r.pos()..], &context) {
                    Ok(d) => d,
                    Err(_) => break, // frame checksum passed but payload torn
                };
                if seq > snap_seq {
                    if seq != last_seq + 1 {
                        return Err(DlnError::corrupt(
                            &context,
                            format!(
                                "evidence sequence gap: expected {}, found {seq}",
                                last_seq + 1
                            ),
                        ));
                    }
                    cumulative.merge(&delta);
                    last_seq = seq;
                }
                pos = frame_end;
                clean_len = pos as u64;
            }
            if (clean_len as usize) < bytes.len() {
                eprintln!(
                    "warning: evidence WAL {} has a torn tail ({} of {} bytes valid); truncating",
                    wal_path.display(),
                    clean_len,
                    bytes.len()
                );
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .map_err(|e| DlnError::io(wal_path.display().to_string(), e))?;
                f.set_len(clean_len)
                    .map_err(|e| DlnError::io(wal_path.display().to_string(), e))?;
                f.sync_all()
                    .map_err(|e| DlnError::io(wal_path.display().to_string(), e))?;
            }
        }
        Ok(EvidenceLog {
            snap_path,
            wal_path,
            cumulative,
            last_seq,
            snap_seq,
            clean_len,
        })
    }

    fn load_snapshot(path: &Path) -> DlnResult<(NavigationLog, u64)> {
        let bytes = std::fs::read(path).map_err(|e| DlnError::io(path.display().to_string(), e))?;
        let context = path.display().to_string();
        let payload = persist::verify_sealed(&bytes, &context)?;
        let mut r = persist::Reader::new(payload, 0, &context);
        if r.take(8)? != SNAP_MAGIC {
            return Err(DlnError::corrupt(&context, "not an evidence snapshot"));
        }
        let version = r.u8()?;
        if version != SNAP_VERSION {
            return Err(DlnError::corrupt(
                &context,
                format!("unsupported evidence snapshot version {version}"),
            ));
        }
        let seq = r.u64()?;
        let n = r.len_prefix()?;
        let log = NavigationLog::decode(r.take(n)?, &context)?;
        Ok((log, seq))
    }

    /// Durably append one drained delta, returning its sequence number.
    /// The frame is fsynced before this returns `Ok`; on any error
    /// (including the injected `reopt.log_torn` tear) nothing is
    /// acknowledged and the write is discarded by the next append.
    pub fn append(&mut self, delta: &NavigationLog) -> DlnResult<u64> {
        let seq = self.last_seq + 1;
        let log_bytes = delta.encode();
        let mut body = Vec::with_capacity(8 + log_bytes.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&log_bytes);
        let mut frame = Vec::with_capacity(16 + body.len());
        frame.extend_from_slice(&(body.len() as u64).to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&persist::fnv1a(&body).to_le_bytes());

        let torn = dln_fault::should_fail("reopt.log_torn");
        let write_len = if torn {
            frame.len() * 2 / 3
        } else {
            frame.len()
        };
        let io_err = |e| DlnError::io(self.wal_path.display().to_string(), e);
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.wal_path)
            .map_err(io_err)?;
        // Discard any torn tail a previous failed append left behind.
        f.set_len(self.clean_len).map_err(io_err)?;
        f.seek(SeekFrom::Start(self.clean_len)).map_err(io_err)?;
        f.write_all(&frame[..write_len]).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        if torn {
            return Err(DlnError::corrupt(
                self.wal_path.display().to_string(),
                "injected torn evidence append (reopt.log_torn)",
            ));
        }
        self.clean_len += frame.len() as u64;
        self.last_seq = seq;
        self.cumulative.merge(delta);
        Ok(seq)
    }

    /// Atomically fold the WAL into the snapshot and truncate it. Crash
    /// between the two steps is safe: already-compacted frames are
    /// skipped by sequence number on the next open.
    pub fn compact(&mut self) -> DlnResult<()> {
        let log_bytes = self.cumulative.encode();
        let mut w = persist::Writer::with_capacity(8 + 1 + 8 + 8 + log_bytes.len() + 8);
        w.bytes(SNAP_MAGIC);
        w.u8(SNAP_VERSION);
        w.u64(self.last_seq);
        w.u64(log_bytes.len() as u64);
        w.bytes(&log_bytes);
        persist::atomic_write(&self.snap_path, &w.seal())?;
        self.snap_seq = self.last_seq;
        let io_err = |e| DlnError::io(self.wal_path.display().to_string(), e);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.wal_path)
            .map_err(io_err)?;
        f.set_len(0).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        self.clean_len = 0;
        Ok(())
    }

    /// All evidence ever durably drained (snapshot ∪ valid WAL frames).
    pub fn cumulative(&self) -> &NavigationLog {
        &self.cumulative
    }

    /// Sequence number of the last durably appended frame.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }
}

// ---------------------------------------------------------------------------
// Durable cycle state
// ---------------------------------------------------------------------------

/// Where a [`Reoptimizer`] is in its cycle state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CyclePhase {
    /// No cycle in flight; the next [`Reoptimizer::advance`] plans one.
    Idle,
    /// A plan is durably committed; [`Reoptimizer::advance`] (re)runs the
    /// checkpointed shard search and stages the graft.
    Searching,
}

/// The durably committed plan of an in-flight cycle.
#[derive(Clone, Debug)]
struct PlanState {
    /// Index of the shard being re-optimized.
    shard: usize,
    /// Derived search seed (base seed ⊕ cycle ⊕ shard, splitmix-mixed).
    seed: u64,
    /// Fingerprint of the full organization the plan was made against;
    /// verified on every advance so a diverged service fails loud.
    pre_fp: u64,
    /// Demand weights, one per shard-context table, mean-normalized.
    weights: Vec<f64>,
    /// The shard's tag group (global ids), pinned so a restart searches
    /// the identical context even if the caller's shard map changed.
    tags: Vec<TagId>,
}

/// The durable optimizer state (`<dir>/reopt.state`).
#[derive(Clone, Debug)]
struct ReoptState {
    /// Completed-cycle counter.
    cycle: u64,
    /// Current shard roots in the served organization (updated on every
    /// committed publish).
    shard_roots: Vec<StateId>,
    /// The in-flight plan, if any ([`CyclePhase::Searching`]).
    plan: Option<PlanState>,
}

impl ReoptState {
    fn encode(&self) -> Vec<u8> {
        let mut w = persist::Writer::with_capacity(128);
        w.bytes(STATE_MAGIC);
        w.u8(STATE_VERSION);
        w.u64(self.cycle);
        w.u64(self.shard_roots.len() as u64);
        for r in &self.shard_roots {
            w.u32(r.0);
        }
        match &self.plan {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                w.u32(p.shard as u32);
                w.u64(p.seed);
                w.u64(p.pre_fp);
                w.u64(p.weights.len() as u64);
                for v in &p.weights {
                    w.u64(v.to_bits());
                }
                w.u64(p.tags.len() as u64);
                for t in &p.tags {
                    w.u32(t.0);
                }
            }
        }
        w.seal()
    }

    fn load(path: &Path) -> DlnResult<ReoptState> {
        let bytes = std::fs::read(path).map_err(|e| DlnError::io(path.display().to_string(), e))?;
        let context = path.display().to_string();
        let payload = persist::verify_sealed(&bytes, &context)?;
        let mut r = persist::Reader::new(payload, 0, &context);
        if r.take(8)? != STATE_MAGIC {
            return Err(DlnError::corrupt(&context, "not an optimizer state file"));
        }
        let version = r.u8()?;
        if version != STATE_VERSION {
            return Err(DlnError::corrupt(
                &context,
                format!("unsupported optimizer state version {version}"),
            ));
        }
        let cycle = r.u64()?;
        let n_roots = r.u64()? as usize;
        if n_roots > payload.len() {
            return Err(DlnError::corrupt(&context, "implausible shard count"));
        }
        let mut shard_roots = Vec::with_capacity(n_roots);
        for _ in 0..n_roots {
            shard_roots.push(StateId(r.u32()?));
        }
        let plan = match r.u8()? {
            0 => None,
            1 => {
                let shard = r.u32()? as usize;
                let seed = r.u64()?;
                let pre_fp = r.u64()?;
                let n_weights = r.u64()? as usize;
                if n_weights > payload.len() {
                    return Err(DlnError::corrupt(&context, "implausible weight count"));
                }
                let mut weights = Vec::with_capacity(n_weights);
                for _ in 0..n_weights {
                    weights.push(f64::from_bits(r.u64()?));
                }
                let n_tags = r.u64()? as usize;
                if n_tags > payload.len() {
                    return Err(DlnError::corrupt(&context, "implausible tag count"));
                }
                let mut tags = Vec::with_capacity(n_tags);
                for _ in 0..n_tags {
                    tags.push(TagId(r.u32()?));
                }
                if shard >= n_roots {
                    return Err(DlnError::corrupt(&context, "plan shard out of range"));
                }
                Some(PlanState {
                    shard,
                    seed,
                    pre_fp,
                    weights,
                    tags,
                })
            }
            b => {
                return Err(DlnError::corrupt(
                    &context,
                    format!("bad plan discriminant {b}"),
                ))
            }
        };
        if r.pos() != payload.len() {
            return Err(DlnError::corrupt(&context, "trailing bytes"));
        }
        Ok(ReoptState {
            cycle,
            shard_roots,
            plan,
        })
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration of a [`Reoptimizer`].
#[derive(Clone, Debug)]
pub struct ReoptConfig {
    /// Directory for all durable optimizer artifacts (state file, search
    /// checkpoint, and — unless `DLN_EVIDENCE_PATH` overrides it — the
    /// evidence log). Created if missing.
    pub dir: PathBuf,
    /// Base search configuration for the per-shard incremental searches.
    /// `seed` is re-derived per cycle and `shards` / `checkpoint` /
    /// `deadline` / `table_weights` are overridden per slice.
    pub search: SearchConfig,
    /// Wall-clock budget per search slice; between slices the optimizer
    /// checks `reopt.search_kill` and then resumes from its checkpoint.
    /// `None` runs each shard search to completion in one slice.
    /// Defaults to the `DLN_REOPT_DEADLINE_MS` environment variable.
    pub slice: Option<Duration>,
    /// Rounds between periodic search checkpoints.
    pub ckpt_every: usize,
    /// Dirichlet pseudo-count blending the uniform prior into observed
    /// transitions (shard selection) and smoothing table demand weights.
    pub prior_strength: f64,
    /// Suggested cadence for driver loops: run one cycle every `every`
    /// closed sessions. Advisory — the optimizer itself is cadence-free.
    /// Defaults to the `DLN_REOPT_EVERY` environment variable, else 32.
    pub every: u64,
    /// Base path of the evidence log (snapshot at `<path>`, WAL at
    /// `<path>.wal`). Defaults to `<dir>/evidence`, overridden by the
    /// `DLN_EVIDENCE_PATH` environment variable.
    pub evidence_path: Option<PathBuf>,
}

impl ReoptConfig {
    /// A configuration rooted at `dir`, with the `DLN_REOPT_EVERY`,
    /// `DLN_REOPT_DEADLINE_MS` and `DLN_EVIDENCE_PATH` environment
    /// overrides applied.
    pub fn new(dir: impl Into<PathBuf>) -> ReoptConfig {
        let slice = std::env::var("DLN_REOPT_DEADLINE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis);
        let every = std::env::var("DLN_REOPT_EVERY")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(32);
        let evidence_path = std::env::var("DLN_EVIDENCE_PATH").ok().map(PathBuf::from);
        ReoptConfig {
            dir: dir.into(),
            search: SearchConfig::default(),
            slice,
            ckpt_every: 8,
            prior_strength: 4.0,
            every,
            evidence_path,
        }
    }

    /// Resolved base path of the evidence log.
    fn evidence_base(&self) -> PathBuf {
        self.evidence_path
            .clone()
            .unwrap_or_else(|| self.dir.join("evidence"))
    }

    fn state_path(&self) -> PathBuf {
        self.dir.join("reopt.state")
    }

    fn ckpt_path(&self) -> PathBuf {
        self.dir.join("reopt.ckpt")
    }
}

// ---------------------------------------------------------------------------
// Reoptimizer
// ---------------------------------------------------------------------------

/// What one [`Reoptimizer::advance`] produced.
pub enum Advance {
    /// Nothing to do: no evidence yet, or no re-optimizable shard.
    Skipped,
    /// A re-optimized shard is staged; the caller must publish `org` and
    /// then call [`Reoptimizer::mark_published`].
    Staged(Box<CycleStage>),
}

/// A staged shard republish: the grafted full organization plus the
/// publish scope the serving layer needs.
pub struct CycleStage {
    /// The full organization with the re-optimized shard grafted in.
    pub org: Organization,
    /// Sorted changed slots (tombstoned old interiors ∪ grafted states) —
    /// the shard-republish scope for session migration.
    pub changed: Vec<u32>,
    /// Which shard was re-optimized.
    pub shard: usize,
    /// The new shard root inside `org`.
    pub new_root: StateId,
    /// Fingerprint of `org` (what the published snapshot must carry).
    pub expected_fingerprint: u64,
    /// Statistics of the (possibly multi-slice) shard search.
    pub stats: SearchStats,
}

/// The crash-safe feedback-driven optimizer. See the module docs for the
/// cycle state machine; all durable state lives under
/// [`ReoptConfig::dir`], so "restart after a crash" is just constructing
/// a new `Reoptimizer` over the same directory.
pub struct Reoptimizer<'a> {
    lake: &'a DataLake,
    cfg: ReoptConfig,
    shard_tags: Vec<Vec<TagId>>,
    evidence: EvidenceLog,
    state: ReoptState,
}

impl<'a> Reoptimizer<'a> {
    /// Open (or create) an optimizer over `dir`. `shard_tags` /
    /// `shard_roots` describe the served organization's router layout; a
    /// durable state file from a previous incarnation overrides
    /// `shard_roots` (it tracks committed republishes).
    pub fn new(
        lake: &'a DataLake,
        shard_tags: Vec<Vec<TagId>>,
        shard_roots: Vec<StateId>,
        cfg: ReoptConfig,
    ) -> DlnResult<Reoptimizer<'a>> {
        if shard_tags.len() != shard_roots.len() {
            return Err(DlnError::InvalidConfig(format!(
                "shard map mismatch: {} tag groups vs {} roots",
                shard_tags.len(),
                shard_roots.len()
            )));
        }
        // NaN-rejecting: a NaN prior must fail validation, not pass it.
        if !matches!(
            cfg.prior_strength.partial_cmp(&0.0),
            Some(Ordering::Greater)
        ) {
            return Err(DlnError::InvalidConfig(
                "reopt prior_strength must be positive".to_string(),
            ));
        }
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| DlnError::io(cfg.dir.display().to_string(), e))?;
        let evidence = EvidenceLog::open(&cfg.evidence_base())?;
        let state_path = cfg.state_path();
        let state = if state_path.exists() || persist::prev_path(&state_path).exists() {
            let state =
                persist::load_with_fallback(&state_path, "optimizer state", ReoptState::load)?;
            if state.shard_roots.len() != shard_tags.len() {
                return Err(DlnError::InvalidConfig(format!(
                    "durable optimizer state has {} shards, caller supplied {}",
                    state.shard_roots.len(),
                    shard_tags.len()
                )));
            }
            state
        } else {
            ReoptState {
                cycle: 0,
                shard_roots,
                plan: None,
            }
        };
        Ok(Reoptimizer {
            lake,
            cfg,
            shard_tags,
            evidence,
            state,
        })
    }

    /// Convenience constructor from a [`ShardedBuild`].
    pub fn for_build(
        lake: &'a DataLake,
        build: &ShardedBuild,
        cfg: ReoptConfig,
    ) -> DlnResult<Reoptimizer<'a>> {
        Reoptimizer::new(
            lake,
            build.shard_tags.clone(),
            build.shard_roots.clone(),
            cfg,
        )
    }

    /// Current phase of the cycle state machine.
    pub fn phase(&self) -> CyclePhase {
        if self.state.plan.is_some() {
            CyclePhase::Searching
        } else {
            CyclePhase::Idle
        }
    }

    /// Completed-cycle counter.
    pub fn cycle(&self) -> u64 {
        self.state.cycle
    }

    /// The configuration this optimizer runs under.
    pub fn config(&self) -> &ReoptConfig {
        &self.cfg
    }

    /// Current shard roots (as of the last committed publish).
    pub fn shard_roots(&self) -> &[StateId] {
        &self.state.shard_roots
    }

    /// All durably drained evidence.
    pub fn evidence(&self) -> &NavigationLog {
        self.evidence.cumulative()
    }

    /// Durably append a drained service-log delta to the evidence log.
    /// Returns its sequence number; on error (torn append) nothing was
    /// acknowledged and the caller must *not* subtract the delta from the
    /// live log.
    pub fn drain(&mut self, delta: &NavigationLog) -> DlnResult<u64> {
        self.evidence.append(delta)
    }

    fn save_state(&self) -> DlnResult<()> {
        persist::atomic_write(&self.cfg.state_path(), &self.state.encode())
    }

    /// Run the next step of the cycle state machine against the currently
    /// served organization. Plans a cycle if idle (durably, before any
    /// search work), then runs the checkpointed shard search to
    /// completion and stages the grafted republish. Errors are crashes:
    /// the durable state is consistent and a new `Reoptimizer` over the
    /// same directory continues bit-identically.
    pub fn advance(&mut self, ctx: &OrgContext, org: &Organization) -> DlnResult<Advance> {
        if self.state.plan.is_none() {
            let Some(plan) = self.plan_cycle(ctx, org)? else {
                return Ok(Advance::Skipped);
            };
            self.state.plan = Some(plan);
            self.save_state()?;
            if dln_fault::should_fail("reopt.crash_mid_cycle") {
                return Err(injected("reopt.crash_mid_cycle"));
            }
        }
        let Some(plan) = self.state.plan.clone() else {
            return Err(DlnError::corrupt("reopt", "plan vanished mid-advance"));
        };
        if org.fingerprint() != plan.pre_fp {
            return Err(DlnError::corrupt(
                self.cfg.state_path().display().to_string(),
                "served organization diverged from the planned cycle; refusing to graft",
            ));
        }
        let (sctx, sorg, stats) = self.run_shard_search(&plan)?;
        let old_root = self.state.shard_roots[plan.shard];
        let (new_org, changed, new_root) = graft_shard(ctx, org, old_root, &sctx, &sorg)?;
        if dln_fault::should_fail("reopt.crash_mid_publish") {
            return Err(injected("reopt.crash_mid_publish"));
        }
        let expected_fingerprint = new_org.fingerprint();
        Ok(Advance::Staged(Box::new(CycleStage {
            org: new_org,
            changed,
            shard: plan.shard,
            new_root,
            expected_fingerprint,
            stats,
        })))
    }

    /// Commit a published cycle: update the shard root, clear the plan,
    /// bump the cycle counter (all durably, in one atomic state write),
    /// then compact the evidence log and discard the search checkpoint.
    pub fn mark_published(&mut self, shard: usize, new_root: StateId) -> DlnResult<()> {
        if self.state.plan.is_none() {
            return Err(DlnError::InvalidConfig(
                "mark_published without an in-flight cycle".to_string(),
            ));
        }
        if shard >= self.state.shard_roots.len() {
            return Err(DlnError::InvalidConfig(format!(
                "published shard {shard} out of range"
            )));
        }
        self.state.shard_roots[shard] = new_root;
        self.state.plan = None;
        self.state.cycle += 1;
        self.save_state()?;
        self.evidence.compact()?;
        let ckpt = self.cfg.ckpt_path();
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(persist::prev_path(&ckpt));
        Ok(())
    }

    /// Plan the next cycle from cumulative evidence: propagate session
    /// mass through the organization along blended transitions, pick the
    /// re-optimizable shard with the highest demand, and derive its
    /// demand-weighted objective. Pure function of (evidence, org) — a
    /// replanned crash reproduces the identical plan.
    fn plan_cycle(&self, ctx: &OrgContext, org: &Organization) -> DlnResult<Option<PlanState>> {
        let log = self.evidence.cumulative();
        if log.n_sessions() == 0 {
            return Ok(None);
        }
        // Session mass per state, root-first along blended transitions.
        let mut mass = vec![0.0f64; org.n_slots()];
        mass[org.root().index()] = 1.0;
        for &s in org.topo_order() {
            let st = org.state(s);
            if st.children.is_empty() || mass[s.index()] == 0.0 {
                continue;
            }
            let prior = vec![1.0 / st.children.len() as f64; st.children.len()];
            let blended = log.blended_transitions(org, s, &prior, self.cfg.prior_strength);
            let m = mass[s.index()];
            for (&c, p) in st.children.iter().zip(&blended) {
                mass[c.index()] += m * p;
            }
        }
        // Highest-demand re-optimizable shard (≥ 2 tags, not the global
        // root itself); ties break to the lowest index.
        let mut best: Option<(usize, f64)> = None;
        for (i, tags) in self.shard_tags.iter().enumerate() {
            let root = self.state.shard_roots[i];
            if tags.len() < 2 || root == org.root() {
                continue;
            }
            let demand = mass[root.index()];
            if best.is_none_or(|(_, d)| demand > d) {
                best = Some((i, demand));
            }
        }
        let Some((shard, _)) = best else {
            return Ok(None);
        };
        let tags = self.shard_tags[shard].clone();
        // Fractional tag demand: each visited state's walk mass spreads
        // evenly over its member tags, so a session expresses preference
        // with every step — not only on the (rare) walks that reach a
        // tag-state sink. The root spreads over all tags (a uniform,
        // harmless shift); deep states concentrate demand.
        let mut tag_demand = vec![0.0f64; ctx.n_tags()];
        for s in org.alive_ids() {
            let v = log.visits(s) as f64;
            if v == 0.0 {
                continue;
            }
            let member: Vec<u32> = org.state(s).tags.iter().collect();
            if member.is_empty() {
                continue;
            }
            let share = v / member.len() as f64;
            for t in member {
                tag_demand[t as usize] += share;
            }
        }
        // Demand weights over the shard context's tables: pseudo-count
        // plus the demand of the tags its attributes carry.
        let sctx = OrgContext::for_tag_group(self.lake, &tags);
        let mut weights = Vec::with_capacity(sctx.n_tables());
        for table in sctx.tables() {
            let mut demand = self.cfg.prior_strength;
            for &a in &table.attrs {
                for &lt in &sctx.attr(a).tags {
                    if let Some(f) = ctx.local_tag(sctx.tag(lt).global) {
                        demand += tag_demand[f as usize];
                    }
                }
            }
            weights.push(demand);
        }
        let total: f64 = weights.iter().sum();
        let n = weights.len() as f64;
        for w in &mut weights {
            *w *= n / total;
        }
        Ok(Some(PlanState {
            shard,
            seed: derive_cycle_seed(self.cfg.search.seed, self.state.cycle, shard as u64),
            pre_fp: org.fingerprint(),
            weights,
            tags,
        }))
    }

    /// Run the planned shard search to completion across deadline slices,
    /// resuming from the durable checkpoint between slices (and across
    /// optimizer restarts). Bit-identical to one uninterrupted run.
    fn run_shard_search(
        &self,
        plan: &PlanState,
    ) -> DlnResult<(OrgContext, Organization, SearchStats)> {
        let sctx = OrgContext::for_tag_group(self.lake, &plan.tags);
        let ckpt_path = self.cfg.ckpt_path();
        loop {
            let mut sorg = init::clustering_org(&sctx);
            let ck = if ckpt_path.exists() || persist::prev_path(&ckpt_path).exists() {
                Checkpoint::load_with_fallback(&ckpt_path).ok()
            } else {
                None
            };
            // The search deadline is a *total* wall-clock budget including
            // checkpointed progress, so each slice extends it by `slice`
            // beyond what the checkpoint already accumulated.
            let prior = ck
                .as_ref()
                .map(|c| Duration::from_nanos(c.elapsed_nanos))
                .unwrap_or(Duration::ZERO);
            let scfg = SearchConfig {
                seed: plan.seed,
                shards: ShardPolicy::Fixed(1),
                table_weights: Some(plan.weights.clone()),
                deadline: self.cfg.slice.map(|s| prior + s),
                checkpoint: Some(CheckpointConfig {
                    path: ckpt_path.clone(),
                    every_rounds: self.cfg.ckpt_every.max(1),
                }),
                ..self.cfg.search.clone()
            };
            let stats = match &ck {
                Some(ck) => match search::resume(&sctx, &mut sorg, &scfg, ck) {
                    Ok(stats) => stats,
                    Err(e) => {
                        // Stale (previous cycle) or torn checkpoint: start
                        // this cycle's search from scratch.
                        eprintln!(
                            "warning: reopt checkpoint {} unusable ({e}); restarting shard search",
                            ckpt_path.display()
                        );
                        let _ = std::fs::remove_file(&ckpt_path);
                        let _ = std::fs::remove_file(persist::prev_path(&ckpt_path));
                        sorg = init::clustering_org(&sctx);
                        search::optimize(&sctx, &mut sorg, &scfg)
                    }
                },
                None => search::optimize(&sctx, &mut sorg, &scfg),
            };
            match stats.stop {
                StopReason::Deadline => {
                    // Slice exhausted; the final checkpoint is on disk.
                    if dln_fault::should_fail("reopt.search_kill") {
                        return Err(injected("reopt.search_kill"));
                    }
                }
                StopReason::Killed => {
                    // `search.kill` fired at a round boundary: the crash
                    // leaves only the last periodic checkpoint behind.
                    return Err(injected("search.kill"));
                }
                _ => return Ok((sctx, sorg, stats)),
            }
        }
    }
}

/// Derive the per-cycle search seed from the base seed (splitmix-style
/// mixing, matching the repo's substream discipline).
pub fn derive_cycle_seed(base: u64, cycle: u64, shard: u64) -> u64 {
    let mut z = base
        .wrapping_add(cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(shard.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Graft a re-optimized shard organization (over `sctx`) back into the
/// full organization, replacing the subtree under `old_root`:
///
/// 1. the old shard interiors (everything under `old_root` except the
///    tag states) are edge-stripped and tombstoned;
/// 2. the new shard's states are mapped in — tag states onto their
///    existing full-organization slots (so untouched paths stay valid
///    verbatim), interiors appended as fresh slots in topological order;
/// 3. the junction parents of `old_root` are re-linked to the new root.
///
/// Deterministic: the same inputs produce the same slots, edges and
/// fingerprint — which is what makes a crash between graft and publish
/// recoverable by simply redoing both. Returns the new organization, the
/// sorted changed-slot set, and the new shard root.
fn graft_shard(
    ctx: &OrgContext,
    base: &Organization,
    old_root: StateId,
    sctx: &OrgContext,
    sorg: &Organization,
) -> DlnResult<(Organization, Vec<u32>, StateId)> {
    let mut out = base.clone();
    if old_root == out.root() {
        return Err(DlnError::InvalidConfig(
            "cannot shard-republish the global root".to_string(),
        ));
    }
    let junctions = out.state(old_root).parents.clone();
    if junctions.is_empty() {
        return Err(DlnError::corrupt(
            "reopt.graft",
            "shard root has no junction parents",
        ));
    }
    let mut old_interiors: Vec<StateId> = out
        .descendants_of(&[old_root])
        .into_iter()
        .filter(|&s| out.state(s).tag.is_none())
        .collect();
    old_interiors.sort_unstable_by_key(|s| s.0);
    let mut changed: Vec<u32> = Vec::new();
    for &s in &old_interiors {
        for c in out.state(s).children.clone() {
            out.remove_edge(s, c);
        }
        for p in out.state(s).parents.clone() {
            out.remove_edge(p, s);
        }
        out.set_alive(s, false);
        changed.push(s.0);
    }
    // Map the shard organization in: tag states onto their existing
    // full-org slots, everything else as fresh appended slots.
    let order = sorg.topo_order().to_vec();
    let mut map: HashMap<u32, StateId> = HashMap::with_capacity(order.len());
    for &sid in &order {
        let st = sorg.state(sid);
        let mapped = if let Some(lt) = st.tag {
            full_tag_slot(ctx, sctx, lt, &mut out)?
        } else {
            let mut full_tags = Vec::with_capacity(8);
            for lt in st.tags.iter() {
                let Some(f) = ctx.local_tag(sctx.tag(lt).global) else {
                    return Err(DlnError::corrupt(
                        "reopt.graft",
                        format!("shard tag {lt} missing from the full context"),
                    ));
                };
                full_tags.push(f);
            }
            let bits = BitSet::from_iter_with_capacity(ctx.n_tags(), full_tags);
            let ns = out.add_state(ctx, bits, None);
            changed.push(ns.0);
            ns
        };
        map.insert(sid.0, mapped);
    }
    let slot = |s: StateId| -> DlnResult<StateId> {
        map.get(&s.0)
            .copied()
            .ok_or_else(|| DlnError::corrupt("reopt.graft", "unmapped shard state"))
    };
    for &sid in &order {
        let parent = slot(sid)?;
        for &c in &sorg.state(sid).children {
            out.add_edge(parent, slot(c)?);
        }
    }
    let new_root = slot(sorg.root())?;
    for &j in &junctions {
        out.add_edge(j, new_root);
    }
    changed.sort_unstable();
    changed.dedup();
    out.validate(ctx)
        .map_err(|m| DlnError::corrupt("reopt.graft", m))?;
    Ok((out, changed, new_root))
}

/// The full-organization slot of shard-local tag `lt`.
fn full_tag_slot(
    ctx: &OrgContext,
    sctx: &OrgContext,
    lt: u32,
    out: &mut Organization,
) -> DlnResult<StateId> {
    let Some(f) = ctx.local_tag(sctx.tag(lt).global) else {
        return Err(DlnError::corrupt(
            "reopt.graft",
            format!("shard tag {lt} missing from the full context"),
        ));
    };
    Ok(out.tag_state(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::build_sharded;
    use dln_synth::TagCloudConfig;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dln_reopt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn sample_delta(seed: u64) -> NavigationLog {
        let mut log = NavigationLog::new();
        log.record_walk(&[StateId(0), StateId((seed % 5) as u32 + 1)]);
        log
    }

    #[test]
    fn evidence_log_roundtrip_and_compaction() {
        let dir = tmp("evlog");
        let base = dir.join("evidence");
        let _clean = dln_fault::scoped("").expect("clean scope");
        let mut ev = EvidenceLog::open(&base).expect("open");
        assert_eq!(ev.last_seq(), 0);
        ev.append(&sample_delta(1)).expect("append 1");
        ev.append(&sample_delta(2)).expect("append 2");
        assert_eq!(ev.last_seq(), 2);
        assert_eq!(ev.cumulative().n_sessions(), 2);
        // Reopen: WAL replays.
        let ev2 = EvidenceLog::open(&base).expect("reopen");
        assert_eq!(ev2.last_seq(), 2);
        assert_eq!(ev2.cumulative().encode(), ev.cumulative().encode());
        // Compact, append more, reopen: snapshot + newer frames.
        ev.compact().expect("compact");
        ev.append(&sample_delta(3)).expect("append 3");
        let ev3 = EvidenceLog::open(&base).expect("reopen after compact");
        assert_eq!(ev3.last_seq(), 3);
        assert_eq!(ev3.cumulative().encode(), ev.cumulative().encode());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_without_losing_acked_frames() {
        // Scoped failpoint guards serialize on one global lock, so they
        // are taken strictly sequentially, never nested.
        let dir = tmp("evtorn");
        let base = dir.join("evidence");
        let acked;
        let mut ev;
        {
            let _clean = dln_fault::scoped("").expect("clean scope");
            ev = EvidenceLog::open(&base).expect("open");
            ev.append(&sample_delta(1)).expect("append 1");
            acked = ev.cumulative().encode();
        }
        // Injected torn append: errors, nothing acknowledged.
        {
            let _torn = dln_fault::scoped("reopt.log_torn:1.0:0").expect("torn scope");
            let err = ev.append(&sample_delta(2)).unwrap_err();
            assert!(matches!(err, DlnError::Corrupt { .. }), "{err}");
        }
        assert_eq!(ev.last_seq(), 1, "torn append not acked");
        {
            let _clean = dln_fault::scoped("").expect("clean scope");
            // Recovery path A: the same handle appends again (tail rewound).
            ev.append(&sample_delta(3)).expect("append after torn");
            assert_eq!(ev.last_seq(), 2);
        }
        {
            let _torn = dln_fault::scoped("reopt.log_torn:1.0:0").expect("torn scope");
            let _ = ev.append(&sample_delta(4)).unwrap_err();
        }
        {
            let _clean = dln_fault::scoped("").expect("clean scope");
            // Recovery path B: a fresh open truncates the torn tail.
            let ev2 = EvidenceLog::open(&base).expect("reopen over torn tail");
            assert_eq!(ev2.last_seq(), 2, "exactly the acked frames survive");
            let mut expect = NavigationLog::decode(&acked, "test").expect("decode");
            expect.merge(&sample_delta(3));
            assert_eq!(ev2.cumulative().encode(), expect.encode());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_roundtrip_with_and_without_plan() {
        let dir = tmp("state");
        let path = dir.join("reopt.state");
        let idle = ReoptState {
            cycle: 3,
            shard_roots: vec![StateId(10), StateId(20)],
            plan: None,
        };
        persist::atomic_write(&path, &idle.encode()).expect("write");
        let back = ReoptState::load(&path).expect("load");
        assert_eq!(back.cycle, 3);
        assert_eq!(back.shard_roots, idle.shard_roots);
        assert!(back.plan.is_none());
        let planned = ReoptState {
            plan: Some(PlanState {
                shard: 1,
                seed: 0xDEAD_BEEF,
                pre_fp: 42,
                weights: vec![0.5, 1.5, 1.0],
                tags: vec![TagId(4), TagId(7)],
            }),
            ..idle
        };
        persist::atomic_write(&path, &planned.encode()).expect("write");
        let back = ReoptState::load(&path).expect("load planned");
        let plan = back.plan.expect("plan present");
        assert_eq!(plan.shard, 1);
        assert_eq!(plan.seed, 0xDEAD_BEEF);
        assert_eq!(plan.weights, vec![0.5, 1.5, 1.0]);
        assert_eq!(plan.tags, vec![TagId(4), TagId(7)]);
        // Corruption sweep: every flipped byte is rejected.
        let bytes = planned.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(ReoptState::load_bytes_for_test(&bad).is_err(), "flip {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    impl ReoptState {
        fn load_bytes_for_test(bytes: &[u8]) -> DlnResult<ReoptState> {
            let dir = std::env::temp_dir();
            let path = dir.join(format!("dln_reopt_flip_{}", std::process::id()));
            std::fs::write(&path, bytes).expect("write");
            let r = ReoptState::load(&path);
            std::fs::remove_file(&path).ok();
            r
        }
    }

    #[test]
    fn graft_preserves_untouched_shards_and_is_deterministic() {
        let _clean = dln_fault::scoped("").expect("clean scope");
        let bench = TagCloudConfig::small().generate();
        let cfg = SearchConfig {
            max_iters: 60,
            plateau_iters: 20,
            shards: ShardPolicy::Fixed(2),
            ..SearchConfig::default()
        };
        let sharded = build_sharded(&bench.lake, &cfg);
        let ctx = &sharded.built.ctx;
        let org = &sharded.built.organization;
        let shard = 0usize;
        let tags = sharded.shard_tags[shard].clone();
        let sctx = OrgContext::for_tag_group(&bench.lake, &tags);
        let mut sorg = init::clustering_org(&sctx);
        let scfg = SearchConfig {
            max_iters: 40,
            plateau_iters: 15,
            seed: 7,
            ..SearchConfig::default()
        };
        search::optimize(&sctx, &mut sorg, &scfg);
        let old_root = sharded.shard_roots[shard];
        let (g1, changed1, root1) = graft_shard(ctx, org, old_root, &sctx, &sorg).expect("graft");
        let (g2, changed2, root2) = graft_shard(ctx, org, old_root, &sctx, &sorg).expect("regraft");
        assert_eq!(g1.fingerprint(), g2.fingerprint(), "graft is deterministic");
        assert_eq!(changed1, changed2);
        assert_eq!(root1, root2);
        // Tag states keep their slots; the other shard's subtree is
        // untouched (no changed slot reachable from its root).
        for t in 0..ctx.n_tags() as u32 {
            assert_eq!(g1.tag_state(t), org.tag_state(t));
        }
        let other_root = sharded.shard_roots[1];
        for s in g1.descendants_of(&[other_root]) {
            assert!(
                changed1.binary_search(&s.0).is_err(),
                "untouched shard slot {} must not be in the changed set",
                s.0
            );
        }
        // The old shard interiors are tombstoned; the new root is alive
        // and reaches exactly the shard's tag states.
        assert!(!g1.state(old_root).alive);
        assert!(g1.state(root1).alive);
        let reached: std::collections::HashSet<u32> = g1
            .descendants_of(&[root1])
            .into_iter()
            .filter_map(|s| g1.state(s).tag)
            .collect();
        let expect: std::collections::HashSet<u32> = tags
            .iter()
            .map(|t| ctx.local_tag(*t).expect("tag in full ctx"))
            .collect();
        assert_eq!(reached, expect);
    }

    #[test]
    fn derive_cycle_seed_varies_by_cycle_and_shard() {
        let s0 = derive_cycle_seed(1, 0, 0);
        assert_ne!(s0, derive_cycle_seed(1, 1, 0));
        assert_ne!(s0, derive_cycle_seed(1, 0, 1));
        assert_eq!(s0, derive_cycle_seed(1, 0, 0), "pure function");
    }
}
