//! Attribute representatives for approximate evaluation (§3.4).
//!
//! "We evaluate an organization on a small number of attribute
//! representatives ... We assume a one-to-one mapping between
//! representatives and a partitioning of attributes." The partition comes
//! from k-medoids over the attributes' topic vectors; the medoid of each
//! cluster *is* its representative, so `P(A|O) ≈ P(ρ(A)|O)` where `ρ(A)` is
//! the medoid of `A`'s cluster. The paper uses a representative set sized
//! at 10% of the attributes, reducing per-iteration discovery evaluations
//! to ≈6% of the attributes with negligible effect on the result
//! (Figure 2a, `2-dim approx`).

use dln_cluster::{CosinePoints, KMedoids};

use crate::ctx::OrgContext;

/// A representative assignment: which query attribute stands for each
/// context attribute.
#[derive(Clone, Debug)]
pub struct Representatives {
    /// Representative attributes (local ids), one per partition.
    pub reps: Vec<u32>,
    /// For each local attribute, the index into `reps` of its
    /// representative.
    pub rep_of_attr: Vec<u32>,
}

impl Representatives {
    /// Exact evaluation: every attribute is its own representative.
    pub fn exact(ctx: &OrgContext) -> Representatives {
        Representatives {
            reps: (0..ctx.n_attrs() as u32).collect(),
            rep_of_attr: (0..ctx.n_attrs() as u32).collect(),
        }
    }

    /// k-medoids representatives with `k = ceil(fraction × n_attrs)`.
    /// `fraction = 1.0` degenerates to [`exact`](Self::exact).
    pub fn kmedoids(ctx: &OrgContext, fraction: f64, seed: u64) -> Representatives {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "representative fraction must be in (0, 1]"
        );
        let n = ctx.n_attrs();
        if n == 0 {
            return Representatives {
                reps: Vec::new(),
                rep_of_attr: Vec::new(),
            };
        }
        let k = ((n as f64 * fraction).ceil() as usize).clamp(1, n);
        if k == n {
            return Self::exact(ctx);
        }
        let points = CosinePoints::new(
            ctx.attrs()
                .iter()
                .map(|a| a.unit_topic.as_slice())
                .collect(),
        );
        let km = KMedoids::fit(&points, k, seed);
        let reps: Vec<u32> = km.medoids.iter().map(|&m| m as u32).collect();
        let rep_of_attr: Vec<u32> = km.assignments.iter().map(|&c| c as u32).collect();
        Representatives { reps, rep_of_attr }
    }

    /// Number of representatives.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// True when there are no representatives (empty context).
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_synth::TagCloudConfig;

    fn ctx() -> OrgContext {
        let bench = TagCloudConfig::small().generate();
        OrgContext::full(&bench.lake)
    }

    #[test]
    fn exact_maps_identity() {
        let ctx = ctx();
        let r = Representatives::exact(&ctx);
        assert_eq!(r.len(), ctx.n_attrs());
        for (a, &q) in r.rep_of_attr.iter().enumerate() {
            assert_eq!(r.reps[q as usize] as usize, a);
        }
    }

    #[test]
    fn kmedoids_ten_percent() {
        let ctx = ctx();
        let r = Representatives::kmedoids(&ctx, 0.1, 3);
        assert_eq!(r.len(), (ctx.n_attrs() as f64 * 0.1).ceil() as usize);
        assert_eq!(r.rep_of_attr.len(), ctx.n_attrs());
        // Every assignment points at a valid representative.
        for &q in &r.rep_of_attr {
            assert!((q as usize) < r.len());
        }
        // Representatives represent themselves.
        for (qi, &rep) in r.reps.iter().enumerate() {
            assert_eq!(r.rep_of_attr[rep as usize] as usize, qi);
        }
    }

    #[test]
    fn representatives_are_similar_to_their_attrs() {
        let ctx = ctx();
        let r = Representatives::kmedoids(&ctx, 0.1, 3);
        let mut sims = Vec::new();
        for (a, &q) in r.rep_of_attr.iter().enumerate() {
            let rep = r.reps[q as usize];
            sims.push(dln_embed::dot(
                &ctx.attr(a as u32).unit_topic,
                &ctx.attr(rep).unit_topic,
            ));
        }
        let mean: f32 = sims.iter().sum::<f32>() / sims.len() as f32;
        assert!(
            mean > 0.8,
            "attrs should be close to their representative (mean sim {mean})"
        );
    }

    #[test]
    fn fraction_one_is_exact() {
        let ctx = ctx();
        let r = Representatives::kmedoids(&ctx, 1.0, 1);
        assert_eq!(r.len(), ctx.n_attrs());
    }

    #[test]
    #[should_panic(expected = "representative fraction")]
    fn zero_fraction_panics() {
        let ctx = ctx();
        Representatives::kmedoids(&ctx, 0.0, 1);
    }
}
