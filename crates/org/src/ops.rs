//! The local-search operations of §3.3: `ADD_PARENT` and `DELETE_PARENT`.
//!
//! Both are implemented as in-place mutations of an [`Organization`] that
//! return an [`OpOutcome`] carrying (a) the *dirty parents* — the states
//! whose outgoing transition distribution changed, from which the
//! evaluator derives the affected subgraph to re-evaluate (§3.4) — and (b)
//! an undo log, so a proposal rejected by the Metropolis test (Eq 9) can be
//! rolled back exactly.

use crate::ctx::OrgContext;
use crate::graph::{Organization, StateId};

/// Which operation was applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// §3.3 Operation I: connect a new, highly reachable parent to the
    /// target state and restore the inclusion property upward.
    AddParent,
    /// §3.3 Operation II: eliminate the target's least reachable parent
    /// (and that parent's interior siblings), reconnecting orphaned
    /// children to their grandparents.
    DeleteParent,
}

/// The record of an applied operation.
#[derive(Debug)]
pub struct OpOutcome {
    /// Which operation ran.
    pub kind: OpKind,
    /// The state the operation targeted.
    pub target: StateId,
    /// States whose outgoing transition distribution changed (children set
    /// changed, or a child's topic vector changed). The evaluator
    /// re-evaluates the descendants of these states' children.
    pub dirty_parents: Vec<StateId>,
    undo: UndoLog,
}

/// One inclusion-maintenance growth record: (state, added tags, added
/// attrs, pre-absorb topic accumulator, pre-absorb unit topic).
type GrowthRecord = (
    StateId,
    Vec<u32>,
    Vec<u32>,
    dln_embed::TopicAccumulator,
    Vec<f32>,
);

#[derive(Debug, Default)]
struct UndoLog {
    /// Edges added by the op (`parent → child`).
    added_edges: Vec<(StateId, StateId)>,
    /// Edges removed by the op.
    removed_edges: Vec<(StateId, StateId)>,
    /// States grown by inclusion maintenance.
    grown: Vec<GrowthRecord>,
    /// States tombstoned by the op.
    killed: Vec<StateId>,
}

/// Apply `ADD_PARENT` to `s`: pick the most reachable interior state at
/// level `level(s) − 1` that is not already a parent of `s` and not a
/// descendant of `s`, make it a parent, and union `s`'s tags into it and
/// its ancestors (inclusion property). Returns `None` when no legal parent
/// candidate exists.
///
/// `reachability[slot]` is the mean reach probability of each state slot
/// (Equation 10), as maintained by the evaluator.
pub fn try_add_parent(
    org: &mut Organization,
    ctx: &OrgContext,
    s: StateId,
    reachability: &[f64],
) -> Option<OpOutcome> {
    if s == org.root() {
        return None;
    }
    let levels = org.levels();
    let l = levels[s.index()];
    if l == u32::MAX || l == 0 {
        return None;
    }
    // Candidate parents: interior alive states exactly one level up.
    let mut best: Option<(StateId, f64)> = None;
    for cand in org.alive_ids() {
        if levels[cand.index()] != l - 1 {
            continue;
        }
        let cs = org.state(cand);
        if cs.tag.is_some() {
            continue; // tag states keep exactly one tag (§3.2)
        }
        if cs.children.contains(&s) {
            continue; // already a parent
        }
        if org.is_ancestor(s, cand) {
            continue; // would create a cycle
        }
        let r = reachability.get(cand.index()).copied().unwrap_or(0.0);
        if best.map(|(_, br)| r > br).unwrap_or(true) {
            best = Some((cand, r));
        }
    }
    let (n, _) = best?;
    let mut undo = UndoLog::default();
    let mut dirty = vec![n];
    org.add_edge(n, s);
    undo.added_edges.push((n, s));
    // Inclusion maintenance: absorb s's tags into n and upward while the
    // absorbing state actually changes (unchanged ⇒ its ancestors already
    // satisfy inclusion).
    let s_tags = org.state(s).tags.clone();
    let mut stack = vec![n];
    let mut seen = vec![false; org.n_slots()];
    seen[n.index()] = true;
    while let Some(x) = stack.pop() {
        let prev_topic = org.state(x).topic.clone();
        let prev_unit = org.state(x).unit_topic.clone();
        let (tags, attrs) = org.absorb_tags(ctx, x, &s_tags);
        if tags.is_empty() && attrs.is_empty() {
            continue;
        }
        let topic_changed = !attrs.is_empty();
        undo.grown.push((x, tags, attrs, prev_topic, prev_unit));
        if topic_changed {
            // x's topic changed ⇒ the transition distributions of all of
            // x's parents changed.
            for &p in &org.state(x).parents {
                if !dirty.contains(&p) {
                    dirty.push(p);
                }
            }
        }
        for &p in &org.state(x).parents {
            if !seen[p.index()] {
                seen[p.index()] = true;
                stack.push(p);
            }
        }
    }
    Some(OpOutcome {
        kind: OpKind::AddParent,
        target: s,
        dirty_parents: dirty,
        undo,
    })
}

/// Apply `DELETE_PARENT` to `s`: eliminate `s`'s least reachable parent
/// `r`, plus `r`'s interior siblings ("except siblings with one tag"),
/// reconnecting every eliminated state's children to its surviving
/// ancestors. Returns `None` when `s` has no eliminable parent (root and
/// tag states are never eliminated).
pub fn try_delete_parent(
    org: &mut Organization,
    ctx: &OrgContext,
    s: StateId,
    reachability: &[f64],
) -> Option<OpOutcome> {
    let _ = ctx;
    if s == org.root() {
        return None;
    }
    // Least reachable eliminable parent.
    let root = org.root();
    let r = org
        .state(s)
        .parents
        .iter()
        .copied()
        .filter(|&p| p != root && org.state(p).tag.is_none())
        .min_by(|a, b| {
            let ra = reachability.get(a.index()).copied().unwrap_or(0.0);
            let rb = reachability.get(b.index()).copied().unwrap_or(0.0);
            ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
        })?;
    // Elimination set: r and its interior siblings (children of r's
    // parents), excluding root, tag states and the target itself.
    let mut eliminate: Vec<StateId> = vec![r];
    for &p in &org.state(r).parents {
        for &sib in &org.state(p).children {
            if sib == r || sib == s || sib == root {
                continue;
            }
            if org.state(sib).tag.is_some() {
                continue;
            }
            if !eliminate.contains(&sib) {
                eliminate.push(sib);
            }
        }
    }
    let in_e = |x: StateId, e: &[StateId]| e.contains(&x);

    let mut undo = UndoLog::default();
    let mut dirty: Vec<StateId> = Vec::new();
    // Resolve the surviving parents of an eliminated state by climbing
    // through eliminated ancestors.
    fn surviving_parents(
        org: &Organization,
        x: StateId,
        eliminate: &[StateId],
        out: &mut Vec<StateId>,
    ) {
        for &p in &org.state(x).parents {
            if eliminate.contains(&p) {
                surviving_parents(org, p, eliminate, out);
            } else if !out.contains(&p) {
                out.push(p);
            }
        }
    }
    // Planned rewiring: surviving children of each eliminated state attach
    // to the state's surviving ancestors.
    let mut new_edges: Vec<(StateId, StateId)> = Vec::new();
    for &x in &eliminate {
        let mut parents = Vec::new();
        surviving_parents(org, x, &eliminate, &mut parents);
        for &c in &org.state(x).children {
            if in_e(c, &eliminate) {
                continue;
            }
            for &p in &parents {
                if !new_edges.contains(&(p, c)) {
                    new_edges.push((p, c));
                }
            }
        }
        for &p in &parents {
            if !dirty.contains(&p) {
                dirty.push(p);
            }
        }
    }
    // Remove all edges incident to the elimination set.
    for &x in &eliminate {
        for p in org.state(x).parents.clone() {
            org.remove_edge(p, x);
            undo.removed_edges.push((p, x));
        }
        for c in org.state(x).children.clone() {
            org.remove_edge(x, c);
            undo.removed_edges.push((x, c));
        }
    }
    // Tombstone.
    for &x in &eliminate {
        org.set_alive(x, false);
        undo.killed.push(x);
    }
    // Rewire.
    for (p, c) in new_edges {
        if org.add_edge(p, c) {
            undo.added_edges.push((p, c));
        }
    }
    Some(OpOutcome {
        kind: OpKind::DeleteParent,
        target: s,
        dirty_parents: dirty,
        undo,
    })
}

/// Roll back an applied operation exactly.
pub fn undo(org: &mut Organization, ctx: &OrgContext, outcome: OpOutcome) {
    let _ = ctx;
    let OpOutcome { undo: log, .. } = outcome;
    // Reverse order of application: rewired edges out, revive, original
    // edges back, shrink grown states.
    for &(p, c) in log.added_edges.iter().rev() {
        org.remove_edge(p, c);
    }
    for &x in log.killed.iter().rev() {
        org.set_alive(x, true);
    }
    for &(p, c) in log.removed_edges.iter().rev() {
        org.add_edge(p, c);
    }
    for (x, tags, attrs, prev_topic, prev_unit) in log.grown.into_iter().rev() {
        org.shed_tags(x, &tags, &attrs, prev_topic, prev_unit);
    }
}

/// The §3.3 proposal at `s`: try one operation, falling back to the other
/// when it has no legal move. `first_add` picks the order (the search draws
/// it uniformly per proposal). Deterministic given the organization, the
/// reachability snapshot and `first_add`.
pub fn propose(
    org: &mut Organization,
    ctx: &OrgContext,
    s: StateId,
    reachability: &[f64],
    first_add: bool,
) -> Option<OpOutcome> {
    if first_add {
        try_add_parent(org, ctx, s, reachability)
            .or_else(|| try_delete_parent(org, ctx, s, reachability))
    } else {
        try_delete_parent(org, ctx, s, reachability)
            .or_else(|| try_add_parent(org, ctx, s, reachability))
    }
}

/// Apply a *specific* operation kind at `s` — used to replay a drafted
/// speculation on the master organization (or a worker replica): with the
/// same organization bits and the same reachability snapshot, the outcome
/// is bit-identical to the speculative application that chose `kind`.
pub fn try_op(
    org: &mut Organization,
    ctx: &OrgContext,
    s: StateId,
    reachability: &[f64],
    kind: OpKind,
) -> Option<OpOutcome> {
    match kind {
        OpKind::AddParent => try_add_parent(org, ctx, s, reachability),
        OpKind::DeleteParent => try_delete_parent(org, ctx, s, reachability),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::OrgContext;
    use crate::init::{clustering_org, flat_org};
    use dln_synth::TagCloudConfig;

    fn ctx() -> OrgContext {
        let bench = TagCloudConfig::small().generate();
        OrgContext::full(&bench.lake)
    }

    fn uniform_reach(org: &Organization) -> Vec<f64> {
        vec![0.5; org.n_slots()]
    }

    /// Structural fingerprint row: (id, alive, children, parents, tag count, topic count).
    type FingerprintRow = (u32, bool, Vec<u32>, Vec<u32>, usize, u64);

    /// Snapshot of the structural fingerprint of an organization.
    fn fingerprint(org: &Organization) -> Vec<FingerprintRow> {
        (0..org.n_slots() as u32)
            .map(|i| {
                let s = org.state(StateId(i));
                let mut ch: Vec<u32> = s.children.iter().map(|c| c.0).collect();
                let mut pa: Vec<u32> = s.parents.iter().map(|p| p.0).collect();
                ch.sort_unstable();
                pa.sort_unstable();
                (i, s.alive, ch, pa, s.tags.len(), s.topic.count())
            })
            .collect()
    }

    #[test]
    fn add_parent_creates_edge_and_keeps_validity() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let reach = uniform_reach(&org);
        // Target: some tag state.
        let s = org.tag_state(0);
        let before_parents = org.state(s).parents.len();
        let out = try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        assert_eq!(out.kind, OpKind::AddParent);
        assert_eq!(org.state(s).parents.len(), before_parents + 1);
        org.validate(&ctx).expect("valid after ADD_PARENT");
        assert!(!out.dirty_parents.is_empty());
    }

    #[test]
    fn add_parent_maintains_inclusion_upward() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let reach = uniform_reach(&org);
        let s = org.tag_state(1);
        let out = try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        let n = out.undo.added_edges[0].0;
        assert!(org.state(n).tags.is_superset_of(&org.state(s).tags));
        org.validate(&ctx).expect("inclusion holds transitively");
    }

    #[test]
    fn add_parent_undo_restores_exactly() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let reach = uniform_reach(&org);
        let before = fingerprint(&org);
        let s = org.tag_state(2);
        let out = try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
        assert_ne!(fingerprint(&org), before, "op changed the graph");
        undo(&mut org, &ctx, out);
        assert_eq!(fingerprint(&org), before, "undo is exact");
        org.validate(&ctx).expect("valid after undo");
    }

    #[test]
    fn add_parent_rejects_root() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let reach = uniform_reach(&org);
        let root = org.root();
        assert!(try_add_parent(&mut org, &ctx, root, &reach).is_none());
    }

    #[test]
    fn add_parent_on_flat_org_has_no_candidates() {
        // In a flat org every tag state's only possible new parent is the
        // root (level 0), which is already its parent.
        let ctx = ctx();
        let mut org = flat_org(&ctx);
        let reach = uniform_reach(&org);
        let s = org.tag_state(0);
        assert!(try_add_parent(&mut org, &ctx, s, &reach).is_none());
    }

    #[test]
    fn delete_parent_eliminates_and_rewires() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let reach = uniform_reach(&org);
        // Pick a tag state deep in the binary tree (parent is interior).
        let s = (0..ctx.n_tags() as u32)
            .map(|t| org.tag_state(t))
            .find(|&ts| {
                org.state(ts)
                    .parents
                    .iter()
                    .any(|&p| p != org.root() && org.state(p).tag.is_none())
            })
            .expect("some tag state has an interior parent");
        let n_alive_before = org.n_alive();
        let out = try_delete_parent(&mut org, &ctx, s, &reach).expect("applicable");
        assert_eq!(out.kind, OpKind::DeleteParent);
        assert!(org.n_alive() < n_alive_before, "states were eliminated");
        org.validate(&ctx).expect("valid after DELETE_PARENT");
        // Target survived and is still reachable.
        assert!(org.state(s).alive);
        assert!(!org.state(s).parents.is_empty());
    }

    #[test]
    fn delete_parent_undo_restores_exactly() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let reach = uniform_reach(&org);
        let s = (0..ctx.n_tags() as u32)
            .map(|t| org.tag_state(t))
            .find(|&ts| {
                org.state(ts)
                    .parents
                    .iter()
                    .any(|&p| p != org.root() && org.state(p).tag.is_none())
            })
            .expect("target with interior parent");
        let before = fingerprint(&org);
        let out = try_delete_parent(&mut org, &ctx, s, &reach).expect("applicable");
        undo(&mut org, &ctx, out);
        assert_eq!(fingerprint(&org), before, "undo is exact");
        org.validate(&ctx).expect("valid after undo");
    }

    #[test]
    fn delete_parent_on_flat_org_is_inapplicable() {
        let ctx = ctx();
        let mut org = flat_org(&ctx);
        let reach = uniform_reach(&org);
        let s = org.tag_state(0);
        // Only parent is the root, which is never eliminated.
        assert!(try_delete_parent(&mut org, &ctx, s, &reach).is_none());
    }

    #[test]
    fn repeated_ops_keep_validity() {
        let ctx = ctx();
        let mut org = clustering_org(&ctx);
        let mut rng_state = 0x12345u64;
        for step in 0..60 {
            let reach: Vec<f64> = (0..org.n_slots())
                .map(|i| {
                    rng_state = rng_state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407 + i as u64);
                    (rng_state >> 11) as f64 / (1u64 << 53) as f64
                })
                .collect();
            let targets: Vec<StateId> = org.alive_ids().filter(|&x| x != org.root()).collect();
            let t = targets[step % targets.len()];
            let out = if step % 2 == 0 {
                try_add_parent(&mut org, &ctx, t, &reach)
            } else {
                try_delete_parent(&mut org, &ctx, t, &reach)
            };
            if let Some(out) = out {
                // Accept half, undo half.
                if step % 4 < 2 {
                    undo(&mut org, &ctx, out);
                }
            }
            org.validate(&ctx)
                .unwrap_or_else(|e| panic!("invalid after step {step}: {e}"));
        }
    }
}
