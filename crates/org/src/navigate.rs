//! Interactive navigation over a built organization.
//!
//! This is the programmatic equivalent of the paper's user-study prototype
//! (§4.4): "At each state, the user can navigate to a desired child node or
//! backtrack to the parent of the current node." Nodes are labelled with
//! representative tags; tag states expose the tables and attributes behind
//! them. The simulated study participants in `dln-study` drive exactly
//! this interface, and the `navigation_repl` example exposes it on stdin.

use dln_embed::{batch_dot_wide, dot};
use dln_fault::{DlnError, DlnResult};
use dln_lake::TableId;

use crate::ctx::OrgContext;
use crate::eval::NavConfig;
use crate::graph::{Organization, StateId};

/// Transition probabilities out of `state` for a query topic (unit
/// vector), per Eq 1 — what a user "having the topic in mind" would
/// gravitate toward. The free-function form of
/// [`Navigator::transition_probs`]: it borrows only the organization, so
/// the serving layer can run it against a shared immutable snapshot
/// without materializing a cursor.
pub fn transition_probs_from(
    org: &Organization,
    nav: NavConfig,
    state: StateId,
    query_unit: &[f32],
) -> Vec<(StateId, f64)> {
    let children = &org.state(state).children;
    if children.is_empty() {
        return Vec::new();
    }
    let scale = nav.gamma as f64 / children.len() as f64;
    let mut scores: Vec<(StateId, f64)> = children
        .iter()
        .map(|&c| (c, scale * dot(&org.state(c).unit_topic, query_unit) as f64))
        .collect();
    softmax_in_place(&mut scores);
    scores
}

/// [`transition_probs_from`] against a precomputed row-major
/// `n_children × dim` matrix of the state's child unit topics (rows in
/// `children` order). Serving snapshots cache these matrices per state so
/// the per-request work is a single streaming mat-vec instead of `k`
/// pointer-chasing dot products; each row runs the same kernel as the
/// scattered path ([`dln_embed::batch_dot_wide`]'s contract), and the
/// softmax is shared, so the probabilities are **bit-identical** to
/// [`transition_probs_from`].
///
/// # Panics
/// Panics in debug builds when the matrix shape does not match the
/// state's child count times the query dimensionality.
pub fn transition_probs_from_mat(
    org: &Organization,
    nav: NavConfig,
    state: StateId,
    child_mat: &[f32],
    query_unit: &[f32],
) -> Vec<(StateId, f64)> {
    transition_probs_over(&org.state(state).children, nav, child_mat, query_unit)
}

/// The structure-free core of [`transition_probs_from_mat`]: Eq 1 over an
/// explicit child list and its row-major `children.len() × dim` unit-topic
/// matrix. Both the in-memory cached-matrix path and the mapped store path
/// ([`crate::store::MappedSnapshot`]) funnel here, so a snapshot served
/// from disk is bit-identical to the one it was saved from.
///
/// # Panics
/// Panics in debug builds when the matrix shape does not match the child
/// count times the query dimensionality.
pub fn transition_probs_over(
    children: &[StateId],
    nav: NavConfig,
    child_mat: &[f32],
    query_unit: &[f32],
) -> Vec<(StateId, f64)> {
    if children.is_empty() {
        return Vec::new();
    }
    debug_assert_eq!(child_mat.len(), children.len() * query_unit.len());
    let mut dots = Vec::with_capacity(children.len());
    batch_dot_wide(child_mat, query_unit, children.len(), &mut dots);
    let scale = nav.gamma as f64 / children.len() as f64;
    let mut scores: Vec<(StateId, f64)> = children
        .iter()
        .zip(&dots)
        .map(|(&c, &d)| (c, scale * d))
        .collect();
    softmax_in_place(&mut scores);
    scores
}

/// The Eq 1 softmax (max-subtracted, normalized when the mass is
/// positive), shared by the scattered and cached-matrix transition paths
/// so both produce the same bits.
fn softmax_in_place(scores: &mut [(StateId, f64)]) {
    let max = scores
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for (_, s) in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    if sum > 0.0 {
        for (_, s) in scores.iter_mut() {
            *s /= sum;
        }
    }
}

/// A cursor over an organization, remembering the path from the root.
pub struct Navigator<'a> {
    ctx: &'a OrgContext,
    org: &'a Organization,
    nav: NavConfig,
    path: Vec<StateId>,
}

impl<'a> Navigator<'a> {
    /// A navigator positioned at the root.
    pub fn new(ctx: &'a OrgContext, org: &'a Organization, nav: NavConfig) -> Navigator<'a> {
        Navigator {
            ctx,
            org,
            nav,
            path: vec![org.root()],
        }
    }

    /// The current state.
    pub fn current(&self) -> StateId {
        // The path always holds at least the root ([`new`] seeds it and
        // [`backtrack`] / [`reset`] never drain it); fall back to the root
        // rather than panicking if that invariant ever broke.
        self.path.last().copied().unwrap_or_else(|| self.org.root())
    }

    /// The path from the root to the current state.
    pub fn path(&self) -> &[StateId] {
        &self.path
    }

    /// Depth of the current state (root = 0).
    pub fn depth(&self) -> usize {
        self.path.len() - 1
    }

    /// Children of the current state.
    pub fn children(&self) -> &[StateId] {
        &self.org.state(self.current()).children
    }

    /// Display label of a state (§4.4 labelling scheme).
    pub fn label(&self, sid: StateId) -> String {
        self.org.label(self.ctx, sid, 2)
    }

    /// If the current state is a tag state, its local tag.
    pub fn at_tag_state(&self) -> Option<u32> {
        self.org.state(self.current()).tag
    }

    /// Transition probabilities from the current state for a query topic
    /// (unit vector), per Eq 1 — what a user "having the topic in mind"
    /// would gravitate toward.
    pub fn transition_probs(&self, query_unit: &[f32]) -> Vec<(StateId, f64)> {
        transition_probs_from(self.org, self.nav, self.current(), query_unit)
    }

    /// Transition probabilities blended with observed navigation behaviour
    /// (§2.4's incremental model estimation): the Eq 1 distribution is the
    /// Dirichlet prior, click-through counts from `log` are the evidence.
    /// `prior_strength` is the prior's pseudo-count weight.
    pub fn transition_probs_with_log(
        &self,
        query_unit: &[f32],
        log: &crate::feedback::NavigationLog,
        prior_strength: f64,
    ) -> Vec<(StateId, f64)> {
        let model = self.transition_probs(query_unit);
        if model.is_empty() {
            return model;
        }
        let prior: Vec<f64> = model.iter().map(|(_, p)| *p).collect();
        let blended = log.blended_transitions(self.org, self.current(), &prior, prior_strength);
        model
            .into_iter()
            .zip(blended)
            .map(|((sid, _), p)| (sid, p))
            .collect()
    }

    /// Descend into `child`. Errors with
    /// [`DlnError::InvalidNavigation`] when `child` is not a child of the
    /// current state; the cursor does not move.
    pub fn descend(&mut self, child: StateId) -> DlnResult<()> {
        if !self.children().contains(&child) {
            return Err(DlnError::invalid_navigation(format!(
                "state {} is not a child of state {}",
                child.0,
                self.current().0
            )));
        }
        self.path.push(child);
        Ok(())
    }

    /// Backtrack one step; returns false at the root.
    pub fn backtrack(&mut self) -> bool {
        if self.path.len() > 1 {
            self.path.pop();
            true
        } else {
            false
        }
    }

    /// Jump back to the root.
    pub fn reset(&mut self) {
        self.path.truncate(1);
    }

    /// The lake tables represented under the current state (tables with at
    /// least one attribute in the state's attribute set), most-covered
    /// first.
    pub fn tables_here(&self) -> Vec<(TableId, usize)> {
        let state = self.org.state(self.current());
        let mut counts: Vec<(TableId, usize)> = Vec::new();
        for (ti, table) in self.ctx.tables().iter().enumerate() {
            let n = table
                .attrs
                .iter()
                .filter(|&&a| state.attrs.contains(a))
                .count();
            if n > 0 {
                counts.push((self.ctx.tables()[ti].global, n));
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts
    }

    /// Number of attributes under the current state.
    pub fn n_attrs_here(&self) -> usize {
        self.org.state(self.current()).attrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::clustering_org;
    use dln_synth::TagCloudConfig;

    fn setup() -> (OrgContext, Organization) {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        (ctx, org)
    }

    #[test]
    fn starts_at_root_and_descends() {
        let (ctx, org) = setup();
        let mut nav = Navigator::new(&ctx, &org, NavConfig::default());
        assert_eq!(nav.current(), org.root());
        assert_eq!(nav.depth(), 0);
        let child = nav.children()[0];
        nav.descend(child).unwrap();
        assert_eq!(nav.current(), child);
        assert_eq!(nav.depth(), 1);
        assert!(nav.backtrack());
        assert_eq!(nav.current(), org.root());
        assert!(!nav.backtrack(), "cannot backtrack past the root");
    }

    #[test]
    fn descend_rejects_non_children_with_typed_error() {
        let (ctx, org) = setup();
        let mut nav = Navigator::new(&ctx, &org, NavConfig::default());
        let ts = org.tag_state(0);
        if !nav.children().contains(&ts) {
            let before = nav.current();
            match nav.descend(ts) {
                Err(DlnError::InvalidNavigation { context }) => {
                    assert!(context.contains(&format!("state {}", ts.0)), "{context}");
                }
                other => panic!("expected InvalidNavigation, got {other:?}"),
            }
            assert_eq!(nav.current(), before, "a rejected descend does not move");
        }
    }

    #[test]
    fn free_fn_matches_navigator_transitions() {
        let (ctx, org) = setup();
        let nav = Navigator::new(&ctx, &org, NavConfig::default());
        let query = ctx.attr(0).unit_topic.clone();
        let via_nav = nav.transition_probs(&query);
        let via_free = transition_probs_from(&org, NavConfig::default(), org.root(), &query);
        assert_eq!(via_nav, via_free);
    }

    #[test]
    fn cached_matrix_transitions_match_scattered_bitwise() {
        let (ctx, org) = setup();
        let nav = NavConfig::default();
        let query = ctx.attr(0).unit_topic.clone();
        for sid in org.alive_ids() {
            let children = &org.state(sid).children;
            let mut mat = Vec::with_capacity(children.len() * ctx.dim());
            for &c in children {
                mat.extend_from_slice(&org.state(c).unit_topic);
            }
            let scattered = transition_probs_from(&org, nav, sid, &query);
            let cached = transition_probs_from_mat(&org, nav, sid, &mat, &query);
            assert_eq!(scattered.len(), cached.len());
            for ((s1, p1), (s2, p2)) in scattered.iter().zip(&cached) {
                assert_eq!(s1, s2);
                assert_eq!(
                    p1.to_bits(),
                    p2.to_bits(),
                    "probs diverge at state {}",
                    sid.0
                );
            }
        }
    }

    #[test]
    fn transition_probs_form_distribution_and_favor_similar() {
        let (ctx, org) = setup();
        let nav = Navigator::new(&ctx, &org, NavConfig::default());
        // Query = topic of attribute 0.
        let query = ctx.attr(0).unit_topic.clone();
        let probs = nav.transition_probs(&query);
        let sum: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // The child containing the query attribute should be preferred.
        let holder = probs
            .iter()
            .find(|(c, _)| org.state(*c).attrs.contains(0))
            .expect("some child holds attr 0");
        let other = probs.iter().find(|(c, _)| !org.state(*c).attrs.contains(0));
        if let Some(other) = other {
            assert!(
                holder.1 > other.1,
                "the holding child ({}) must beat the other ({})",
                holder.1,
                other.1
            );
        }
    }

    #[test]
    fn walk_to_tag_state_and_list_tables() {
        let (ctx, org) = setup();
        let mut nav = Navigator::new(&ctx, &org, NavConfig::default());
        // Greedy walk toward attribute 0's topic.
        let query = ctx.attr(0).unit_topic.clone();
        for _ in 0..64 {
            let probs = nav.transition_probs(&query);
            let Some((best, _)) = probs
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .copied()
            else {
                break;
            };
            nav.descend(best).unwrap();
        }
        assert!(nav.at_tag_state().is_some(), "greedy walk reaches a sink");
        let tables = nav.tables_here();
        assert!(!tables.is_empty());
        // The owning table of attribute 0 should be among them iff the walk
        // found its tag; regardless, table list is sane.
        for (_, n) in &tables {
            assert!(*n >= 1);
        }
        assert!(nav.n_attrs_here() >= 1);
    }

    #[test]
    fn reset_returns_to_root() {
        let (ctx, org) = setup();
        let mut nav = Navigator::new(&ctx, &org, NavConfig::default());
        let child = nav.children()[0];
        nav.descend(child).unwrap();
        nav.reset();
        assert_eq!(nav.current(), org.root());
        assert_eq!(nav.path().len(), 1);
    }

    #[test]
    fn log_blending_shifts_transitions_toward_clicks() {
        let (ctx, org) = setup();
        let nav = Navigator::new(&ctx, &org, NavConfig::default());
        let query = ctx.attr(0).unit_topic.clone();
        let base = nav.transition_probs(&query);
        // Log heavy traffic into the model's LEAST preferred child.
        let (worst, _) = base
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .copied()
            .unwrap();
        let mut log = crate::feedback::NavigationLog::new();
        for _ in 0..200 {
            log.record_walk(&[org.root(), worst]);
        }
        let blended = nav.transition_probs_with_log(&query, &log, 5.0);
        let sum: f64 = blended.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let b_worst = blended.iter().find(|(s, _)| *s == worst).unwrap().1;
        let m_worst = base.iter().find(|(s, _)| *s == worst).unwrap().1;
        assert!(
            b_worst > m_worst,
            "click evidence must lift the clicked child: {b_worst} vs {m_worst}"
        );
        assert!(b_worst > 0.9, "200 clicks vs strength 5 dominates");
    }

    #[test]
    fn labels_are_nonempty() {
        let (ctx, org) = setup();
        let nav = Navigator::new(&ctx, &org, NavConfig::default());
        for &c in nav.children() {
            assert!(!nav.label(c).is_empty());
        }
    }
}
