//! Concurrent, fault-tolerant serving of navigation organizations.
//!
//! The paper builds organizations offline; this crate is what stands
//! between that artifact and many simultaneous navigating users. Its
//! design center is *robustness under the three things that go wrong in
//! production*:
//!
//! 1. **The organization changes under you.** Re-optimization publishes a
//!    new organization while sessions are mid-walk. [`SnapshotStore`]
//!    hot-swaps whole immutable [`OrgSnapshot`]s under an epoch counter;
//!    sessions either pin their epoch, migrate by path replay
//!    ([`replay_path`], tag-set identity), or get a typed
//!    [`ServeError::Stale`] — never a torn read.
//! 2. **Load exceeds capacity.** The [`AdmissionGate`] bounds concurrency
//!    and queue depth, shedding excess with typed
//!    [`ServeError::Overloaded`] + retry-after; [`RetryPolicy`] is the
//!    client half. Requests that *are* admitted but blow their deadline
//!    degrade gracefully ([`StepResponse::degraded`]) instead of erroring.
//! 3. **State gets lost.** The bounded [`SessionRegistry`] TTL-evicts idle
//!    sessions deterministically (injected [`Clock`]) and merges their
//!    navigation logs instead of dropping them; `dln-fault` failpoints
//!    (`serve.slow`, `serve.drop_session`, `serve.swap_race`) inject the
//!    failures the chaos suite asserts recovery from.
//!
//! Entry point: [`NavService`].

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod api;
pub mod clock;
pub mod error;
pub mod gate;
pub mod registry;
pub mod retry;
pub mod service;
pub mod snapshot;

pub use api::{ApiRequest, ApiResponse, WireError};
pub use clock::{Clock, ManualClock, WallClock};
pub use error::{ServeError, ServeResult};
pub use gate::{AdmissionGate, Permit};
pub use registry::{EvictedSession, Session, SessionId, SessionRegistry};
pub use retry::RetryPolicy;
pub use service::{
    tables_at, ChildView, CycleReport, MaintReport, NavService, ServeConfig, ServeStats,
    StepAction, StepRequest, StepResponse, SwapOutcome, SwapPolicy,
};
pub use snapshot::{replay_path, OrgSnapshot, PublishScope, SnapshotStore};
