//! The navigation service: snapshots + sessions + deadlines + admission
//! control, composed into one request/response surface.
//!
//! [`NavService::step`] is the only hot path. Its lifecycle:
//!
//! 1. **Admission** — acquire a permit from the [`AdmissionGate`]; shed
//!    with a typed `Overloaded` if the bounded queue is full.
//! 2. **Session lookup** — TTL-checked; expired sessions are evicted on
//!    sight (their logs merged, never lost) and reported as typed
//!    `SessionExpired`.
//! 3. **Chaos** — the `serve.drop_session` failpoint may tear the session
//!    down (simulating a crashed worker); `serve.swap_race` yields the
//!    thread mid-request to widen the hot-swap race window. Both draw
//!    *keyed* on the session's fault key, so chaos schedules are identical
//!    under any thread interleaving.
//! 4. **Epoch reconciliation** — if a publish happened since the session's
//!    snapshot, the configured [`SwapPolicy`] pins, migrates (path replay
//!    by tag-set identity), or rejects with typed `Stale`.
//! 5. **Action + deadline** — apply the navigation action, then decide
//!    whether the remaining budget allows ranking children (Eq 1 softmax
//!    over topic similarity). Past the deadline the response *degrades*:
//!    cached child labels, no probabilities, `degraded: true` — a slow
//!    answer beats an error for a navigating human.
//!
//! Time is read through the injected [`Clock`], and the `serve.slow`
//! failpoint charges *virtual* milliseconds instead of sleeping, so
//! deadline behaviour in tests is deterministic and instant.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dln_fault::{should_fail_keyed, DlnError, DlnResult};
use dln_lake::TableId;
use dln_org::eval::NavConfig;
use dln_org::{
    Advance, BuiltOrganization, MaintAdvance, Maintainer, MappedSnapshot, NavigationLog,
    OrgContext, Organization, Reoptimizer, StateId,
};

use crate::clock::{Clock, WallClock};
use crate::error::{ServeError, ServeResult};
use crate::gate::AdmissionGate;
use crate::registry::{lock, EvictedSession, SessionId, SessionRegistry};
use crate::snapshot::{replay_path, OrgSnapshot, SnapshotStore};

/// What a request does to a session's snapshot when a newer epoch has been
/// published since the session last ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapPolicy {
    /// Keep serving the session's pinned (old) snapshot; it stays alive
    /// via the session's `Arc` no matter how many publishes happen.
    Pin,
    /// Replay the session's path onto the new snapshot by tag-set identity
    /// and continue there (the default).
    Migrate,
    /// Refuse with a typed [`ServeError::Stale`]; the client re-opens.
    Reject,
}

/// How a request's epoch reconciliation went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcome {
    /// Session snapshot and published snapshot agree.
    Current,
    /// A newer epoch exists but the session stayed pinned to its own.
    Pinned {
        /// The (old) epoch the session keeps navigating.
        epoch: u64,
    },
    /// The session was migrated onto the newly published snapshot.
    Migrated {
        /// Epoch the session came from.
        from_epoch: u64,
        /// Epoch it now navigates.
        to_epoch: u64,
        /// Path states that could not be replayed (0 = seamless).
        lost_depth: usize,
    },
}

/// A navigation action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAction {
    /// Descend into a child of the current state.
    Descend(StateId),
    /// Pop one path element (no-op at the root).
    Backtrack,
    /// Jump back to the root, recording the finished walk.
    Reset,
    /// Stay put (refresh the view / re-rank for a new query).
    Stay,
}

/// One navigation request.
#[derive(Debug, Clone)]
pub struct StepRequest {
    /// The action to apply before rendering the view.
    pub action: StepAction,
    /// Unit topic vector the user "has in mind" (Eq 1); `None` skips
    /// child ranking.
    pub query: Option<Vec<f32>>,
    /// Per-request deadline override, in clock ms; `None` uses the
    /// service default.
    pub deadline_ms: Option<u64>,
    /// Also list the tables under the current state (skipped when
    /// degraded — it is the most expensive part of the view).
    pub list_tables: bool,
}

impl StepRequest {
    /// A bare action with no query, default deadline, no table listing.
    pub fn action(action: StepAction) -> StepRequest {
        StepRequest {
            action,
            query: None,
            deadline_ms: None,
            list_tables: false,
        }
    }
}

/// One child of the current state, as shown to the user.
#[derive(Debug, Clone)]
pub struct ChildView {
    /// The child state.
    pub state: StateId,
    /// Its display label (cached on the snapshot).
    pub label: String,
    /// Model transition probability; `None` on degraded or query-less
    /// responses.
    pub prob: Option<f64>,
}

/// A well-formed response — degraded or not, every field is meaningful.
#[derive(Debug, Clone)]
pub struct StepResponse {
    /// The session this answers for.
    pub session: SessionId,
    /// Epoch of the snapshot the response was computed on.
    pub epoch: u64,
    /// Current state after the action.
    pub state: StateId,
    /// Depth of the current state (root = 0).
    pub depth: usize,
    /// Display label of the current state.
    pub label: String,
    /// The local tag when the current state is a tag state.
    pub at_tag_state: Option<u32>,
    /// Children of the current state, ranked when probabilities are
    /// available.
    pub children: Vec<ChildView>,
    /// Tables under the current state (when requested and not degraded):
    /// `(table, matching attribute count)`, most-covered first.
    pub tables: Vec<(TableId, usize)>,
    /// True when the deadline forced label-only degradation.
    pub degraded: bool,
    /// How epoch reconciliation went for this request.
    pub swap: SwapOutcome,
}

/// Serving configuration. `from_env` reads the `DLN_SERVE_*` variables
/// documented in the README.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Session registry capacity (`DLN_SERVE_SESSIONS`, default 1024).
    pub max_sessions: usize,
    /// Idle-session TTL in clock ms (default 600 000 = 10 min).
    pub session_ttl_ms: u64,
    /// Default per-request deadline in clock ms; `None` = no deadline
    /// (`DLN_SERVE_DEADLINE_MS`, 0 or unset = none).
    pub deadline_ms: Option<u64>,
    /// Concurrent-request limit (`DLN_SERVE_CONCURRENCY`, default =
    /// `rayon::current_num_threads()`).
    pub max_concurrency: usize,
    /// Bounded wait-queue depth behind the concurrency limit (default =
    /// 2 × `max_concurrency`).
    pub queue_depth: usize,
    /// Base of the retry-after hint on shed requests, ms.
    pub retry_base_ms: u64,
    /// What to do with sessions from an older epoch.
    pub swap_policy: SwapPolicy,
    /// Virtual ms charged against the deadline when `serve.slow` fires.
    pub slow_penalty_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let conc = rayon::current_num_threads().max(1);
        ServeConfig {
            max_sessions: 1024,
            session_ttl_ms: 600_000,
            deadline_ms: None,
            max_concurrency: conc,
            queue_depth: 2 * conc,
            retry_base_ms: 10,
            swap_policy: SwapPolicy::Migrate,
            slow_penalty_ms: 1000,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl ServeConfig {
    /// Defaults overridden by `DLN_SERVE_SESSIONS`, `DLN_SERVE_DEADLINE_MS`
    /// (0 = none) and `DLN_SERVE_CONCURRENCY`.
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        cfg.max_sessions = env_u64("DLN_SERVE_SESSIONS", cfg.max_sessions as u64).max(1) as usize;
        cfg.deadline_ms = match env_u64("DLN_SERVE_DEADLINE_MS", 0) {
            0 => None,
            ms => Some(ms),
        };
        let conc = env_u64("DLN_SERVE_CONCURRENCY", cfg.max_concurrency as u64).max(1) as usize;
        cfg.max_concurrency = conc;
        cfg.queue_depth = 2 * conc;
        cfg
    }
}

/// Monotone service counters. All deterministic quantities (everything
/// except `overloaded`, which depends on real arrival timing when the gate
/// queue is contended) agree between serial and concurrent runs of the
/// same workload.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests that passed admission.
    pub requests: AtomicU64,
    /// Responses degraded by a deadline.
    pub degraded: AtomicU64,
    /// Requests shed by admission control.
    pub overloaded: AtomicU64,
    /// Sessions opened.
    pub opened: AtomicU64,
    /// Sessions closed by the client.
    pub closed: AtomicU64,
    /// Sessions evicted by TTL.
    pub evicted_ttl: AtomicU64,
    /// Sessions torn down by the `serve.drop_session` failpoint.
    pub dropped_fault: AtomicU64,
    /// Requests that migrated their session to a new epoch by path replay.
    pub migrated: AtomicU64,
    /// Requests that rode a shard-level republish *in place*: the session's
    /// path avoided every changed slot, so the snapshot `Arc` was swapped
    /// without replay and with `lost_depth == 0`.
    pub migrated_in_place: AtomicU64,
    /// Requests that kept navigating a pinned old epoch.
    pub pinned: AtomicU64,
    /// Requests refused as stale under [`SwapPolicy::Reject`].
    pub stale: AtomicU64,
    /// Snapshots published (excluding the initial one).
    pub published: AtomicU64,
}

macro_rules! bump {
    ($stats:expr, $field:ident) => {
        $stats.$field.fetch_add(1, Ordering::Relaxed)
    };
}

/// What one service-driven re-optimization cycle did
/// ([`NavService::run_reopt_cycle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleReport {
    /// TTL-expired sessions swept at cycle start; their walks finalize
    /// into the merged log *before* the drain, so feedback from abandoned
    /// sessions still reaches the optimizer.
    pub swept: usize,
    /// Sessions durably drained into the evidence log this cycle.
    pub drained_sessions: u64,
    /// Epoch of the shard republish, when one was published.
    pub epoch: Option<u64>,
    /// Index of the re-optimized shard, when one was published.
    pub shard: Option<usize>,
}

/// What one service-driven maintenance cycle did
/// ([`NavService::run_maintenance_cycle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintReport {
    /// TTL-expired sessions swept at cycle start.
    pub swept: usize,
    /// Epoch of the shard-scoped republish, when one was published.
    pub epoch: Option<u64>,
    /// Change events folded into the published organization.
    pub applied_events: u64,
    /// Slots in the republish scope (tombstones + appended states).
    pub n_changed: usize,
    /// Shards rebuilt by a checkpointed search (rebalance donors handled
    /// by edge surgery don't count).
    pub searched_shards: usize,
}

/// The concurrent navigation service.
pub struct NavService {
    store: SnapshotStore,
    registry: Mutex<SessionRegistry>,
    gate: AdmissionGate,
    cfg: ServeConfig,
    clock: Arc<dyn Clock>,
    /// Service-wide merged navigation log (fed by closed/evicted
    /// sessions); input to the next reorganization.
    log: Mutex<NavigationLog>,
    stats: ServeStats,
}

impl NavService {
    /// A service over one organization, with a wall clock.
    pub fn new(ctx: OrgContext, org: Organization, nav: NavConfig, cfg: ServeConfig) -> NavService {
        NavService::with_clock(ctx, org, nav, cfg, Arc::new(WallClock::new()))
    }

    /// A service over a [`BuiltOrganization`] (as produced by the
    /// organizer), with a wall clock.
    pub fn from_built(built: BuiltOrganization, cfg: ServeConfig) -> NavService {
        NavService::new(built.ctx, built.organization, built.nav, cfg)
    }

    /// A service with an injected clock (tests use [`ManualClock`]).
    ///
    /// [`ManualClock`]: crate::clock::ManualClock
    pub fn with_clock(
        ctx: OrgContext,
        org: Organization,
        nav: NavConfig,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> NavService {
        NavService::from_store(SnapshotStore::new(ctx, org, nav), cfg, clock)
    }

    /// Cold-start a service from a persistent store file (DESIGN.md §5g):
    /// the snapshot is opened zero-copy (with `.prev` generation
    /// fallback) and served by reference — no CSV parsing, no embedding,
    /// no clustering. Wall clock; see [`NavService::open_path_with_clock`]
    /// for tests.
    pub fn open_path(path: &Path, cfg: ServeConfig) -> DlnResult<NavService> {
        NavService::open_path_with_clock(path, cfg, Arc::new(WallClock::new()))
    }

    /// [`NavService::open_path`] with an injected clock.
    pub fn open_path_with_clock(
        path: &Path,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> DlnResult<NavService> {
        Ok(NavService::from_store(
            SnapshotStore::open_path(path)?,
            cfg,
            clock,
        ))
    }

    fn from_store(store: SnapshotStore, cfg: ServeConfig, clock: Arc<dyn Clock>) -> NavService {
        NavService {
            store,
            registry: Mutex::new(SessionRegistry::new(cfg.max_sessions, cfg.session_ttl_ms)),
            gate: AdmissionGate::new(cfg.max_concurrency, cfg.queue_depth, cfg.retry_base_ms),
            cfg,
            clock,
            log: Mutex::new(NavigationLog::new()),
            stats: ServeStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Service counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The admission gate (diagnostics: active/waiting).
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// Current published epoch.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// Number of live sessions.
    pub fn live_sessions(&self) -> usize {
        lock(&self.registry).len()
    }

    /// Clone of the service-wide merged navigation log.
    pub fn merged_log(&self) -> NavigationLog {
        lock(&self.log).clone()
    }

    /// Hot-swap in a new organization; in-flight and pinned sessions keep
    /// their current snapshot until they migrate per policy. Returns the
    /// new epoch.
    pub fn publish(&self, ctx: OrgContext, org: Organization, nav: NavConfig) -> u64 {
        let e = self.store.publish(ctx, org, nav);
        bump!(self.stats, published);
        e
    }

    /// Hot-swap in a store file: open it zero-copy (with `.prev`
    /// fallback) and publish the mapped snapshot as a new epoch. Pinned
    /// and migrating sessions behave exactly as under [`NavService::publish`].
    pub fn publish_path(&self, path: &Path) -> DlnResult<u64> {
        let mapped = Arc::new(dln_org::open_store_with_fallback(path)?);
        Ok(self.publish_mapped(mapped))
    }

    /// Hot-swap in an already-opened store snapshot as a new epoch.
    pub fn publish_mapped(&self, mapped: Arc<MappedSnapshot>) -> u64 {
        let e = self.store.publish_mapped(mapped);
        bump!(self.stats, published);
        e
    }

    /// Hot-swap in a shard-level republish: `org` differs from the current
    /// snapshot only in the `changed` slots. Sessions whose paths avoid
    /// those slots migrate *in place* (no replay, `lost_depth == 0`);
    /// sessions inside the republished shard replay as usual.
    pub fn publish_shard(
        &self,
        ctx: Arc<OrgContext>,
        org: Organization,
        nav: NavConfig,
        changed: Vec<u32>,
    ) -> u64 {
        let e = self.store.publish_scoped(ctx, org, nav, changed);
        bump!(self.stats, published);
        e
    }

    /// Subtract a durably drained delta from the merged log — the
    /// ack-after-durable half of the evidence drain. Call only with a
    /// delta the evidence log reported written; walks recorded since the
    /// delta was cloned are preserved exactly.
    pub fn ack_drained(&self, drained: &NavigationLog) {
        lock(&self.log).subtract(drained);
    }

    /// Run one re-optimization cycle against this service:
    ///
    /// 1. sweep TTL-expired sessions (their walks finalize into the merged
    ///    log, so abandoned sessions still count as feedback);
    /// 2. drain the merged log into the optimizer's durable evidence log —
    ///    ack-after-durable, so a torn append loses nothing and a repeated
    ///    drain double-counts nothing;
    /// 3. advance the optimizer's cycle state machine (plan → checkpointed
    ///    shard search → graft);
    /// 4. publish a staged graft as a shard-level republish and commit the
    ///    cycle.
    ///
    /// Errors are optimizer crashes: the service keeps serving its current
    /// snapshot, and a fresh [`Reoptimizer`] over the same directory
    /// resumes the cycle bit-identically.
    pub fn run_reopt_cycle(&self, reopt: &mut Reoptimizer<'_>) -> DlnResult<CycleReport> {
        let swept = self.sweep_expired();
        let delta = self.merged_log();
        let drained_sessions = if delta.n_sessions() > 0 {
            reopt.drain(&delta)?;
            self.ack_drained(&delta);
            delta.n_sessions()
        } else {
            0
        };
        let snap = self.snapshot();
        let Some((ctx, org)) = snap.owned_parts() else {
            return Err(DlnError::InvalidConfig(
                "re-optimization requires an owned snapshot; republish the mapped store \
                 as an in-memory organization first"
                    .to_string(),
            ));
        };
        match reopt.advance(&ctx, &org)? {
            Advance::Skipped => Ok(CycleReport {
                swept,
                drained_sessions,
                epoch: None,
                shard: None,
            }),
            Advance::Staged(stage) => {
                let shard = stage.shard;
                let new_root = stage.new_root;
                let epoch = self.publish_shard(ctx, stage.org, snap.nav(), stage.changed);
                reopt.mark_published(shard, new_root)?;
                Ok(CycleReport {
                    swept,
                    drained_sessions,
                    epoch: Some(epoch),
                    shard: Some(shard),
                })
            }
        }
    }

    /// Run one incremental maintenance cycle against this service:
    ///
    /// 1. sweep TTL-expired sessions (live sessions keep serving either
    ///    way — churn maintenance does not consume navigation feedback);
    /// 2. advance the maintainer's cycle state machine (durable plan →
    ///    rebase → localized re-search / rebalance surgery → validate);
    /// 3. publish the staged organization as a shard-scoped republish —
    ///    the staged snapshot carries its *own* post-churn context, so
    ///    sessions on untouched shards ride in place across the lake
    ///    change — and commit the cycle.
    ///
    /// Errors are maintainer crashes: the service keeps serving its
    /// current snapshot, and a fresh [`Maintainer`] over the same
    /// directory resumes the cycle bit-identically.
    pub fn run_maintenance_cycle(&self, maint: &mut Maintainer<'_>) -> DlnResult<MaintReport> {
        let swept = self.sweep_expired();
        let snap = self.snapshot();
        let Some((ctx, org)) = snap.owned_parts() else {
            return Err(DlnError::InvalidConfig(
                "maintenance requires an owned snapshot; republish the mapped store \
                 as an in-memory organization first"
                    .to_string(),
            ));
        };
        match maint.advance(&ctx, &org)? {
            MaintAdvance::Skipped => Ok(MaintReport {
                swept,
                epoch: None,
                applied_events: 0,
                n_changed: 0,
                searched_shards: 0,
            }),
            MaintAdvance::Staged(stage) => {
                let roots = stage.shard_roots.clone();
                let n_changed = stage.changed.len();
                let epoch =
                    self.publish_shard(Arc::new(stage.ctx), stage.org, snap.nav(), stage.changed);
                maint.mark_published(&roots)?;
                Ok(MaintReport {
                    swept,
                    epoch: Some(epoch),
                    applied_events: stage.applied_events,
                    n_changed,
                    searched_shards: stage.searched_shards,
                })
            }
        }
    }

    /// The currently published snapshot (cheap `Arc` clone).
    pub fn snapshot(&self) -> Arc<OrgSnapshot> {
        self.store.current()
    }

    /// Persist the currently published snapshot as a store file at
    /// `path` (atomic write + `.prev` rotation) — the save half of the
    /// millisecond cold-start loop.
    pub fn save_current(&self, path: &Path) -> DlnResult<()> {
        self.store.current().save(path)
    }

    /// Open a session on the current snapshot with fault key 0.
    pub fn open_session(&self) -> ServeResult<SessionId> {
        self.open_session_keyed(0)
    }

    /// Open a session with a caller-supplied fault key (e.g. the agent's
    /// seed). Keyed chaos draws make per-session fault schedules
    /// independent of the order sessions happen to be opened in.
    pub fn open_session_keyed(&self, fault_key: u64) -> ServeResult<SessionId> {
        let now = self.clock.now();
        let snap = self.store.current();
        let mut evicted = Vec::new();
        let out = lock(&self.registry).open(snap, now, fault_key, &mut evicted);
        self.absorb_evicted(evicted);
        if out.is_ok() {
            bump!(self.stats, opened);
        }
        out
    }

    /// Close a session, merging its walk log into the service log.
    pub fn close_session(&self, id: SessionId) -> ServeResult<()> {
        let log = lock(&self.registry).close(id)?;
        lock(&self.log).merge(&log);
        bump!(self.stats, closed);
        Ok(())
    }

    /// The session's current root-anchored path.
    pub fn session_path(&self, id: SessionId) -> ServeResult<Vec<StateId>> {
        let now = self.clock.now();
        let mut evicted = Vec::new();
        let slot = lock(&self.registry).touch(id, now, &mut evicted);
        self.absorb_evicted(evicted);
        let slot = slot?;
        let path = lock(&slot).path.clone();
        Ok(path)
    }

    /// Check every live session's path against its own snapshot. Returns
    /// `(checked, invalid)`; `invalid > 0` means a hot-swap tore a
    /// session's state — the property the chaos test asserts never holds.
    pub fn validate_live_paths(&self) -> (usize, usize) {
        // Hold the registry lock across the whole audit: otherwise a
        // concurrent close/evict can drain a session (its final walk moves
        // into the merged log) after we cloned its slot, and the audit
        // would mistake the drained carcass for a torn live session. Lock
        // order registry → session matches every other path.
        let reg = lock(&self.registry);
        let mut checked = 0;
        let mut invalid = 0;
        for id in reg.ids() {
            let Some(slot) = reg.peek(id) else { continue };
            let s = lock(&slot);
            checked += 1;
            if !s.snapshot.path_is_valid(&s.path) {
                invalid += 1;
            }
        }
        (checked, invalid)
    }

    /// Evict idle sessions now (also happens lazily on open/step).
    pub fn sweep_expired(&self) -> usize {
        let now = self.clock.now();
        let evicted = lock(&self.registry).evict_expired(now);
        let n = evicted.len();
        self.absorb_evicted(evicted);
        n
    }

    /// One navigation step. See the module docs for the lifecycle.
    pub fn step(&self, id: SessionId, req: &StepRequest) -> ServeResult<StepResponse> {
        let _permit = match self.gate.admit() {
            Ok(p) => p,
            Err(e) => {
                bump!(self.stats, overloaded);
                return Err(e);
            }
        };
        let t0 = self.clock.now();
        bump!(self.stats, requests);

        // Session lookup (TTL-checked, evictions absorbed).
        let slot = {
            let mut evicted = Vec::new();
            let out = lock(&self.registry).touch(id, t0, &mut evicted);
            self.absorb_evicted(evicted);
            out?
        };
        let mut s = lock(&slot);
        s.steps += 1;
        // One key per (session, request); decorrelated from neighbouring
        // keys so adjacent agent seeds do not share fault schedules.
        let fault_key = s.fault_key ^ s.steps.wrapping_mul(0x9E37_79B9_7F4A_7C15);

        // Chaos: a "crashed worker" loses the session mid-request.
        if should_fail_keyed("serve.drop_session", fault_key) {
            drop(s);
            lock(&self.registry).drop_abrupt(id);
            bump!(self.stats, dropped_fault);
            return Err(ServeError::SessionExpired {
                session: id,
                injected: true,
            });
        }

        // Epoch reconciliation under the configured swap policy.
        let mut current = self.store.current();
        if should_fail_keyed("serve.swap_race", fault_key) {
            // Widen the race window: yield so a concurrent publish can land
            // between the first read and the re-read, then reconcile
            // against whatever is newest.
            std::thread::yield_now();
            current = self.store.current();
        }
        let swap = if s.snapshot.epoch() == current.epoch() {
            SwapOutcome::Current
        } else {
            match self.cfg.swap_policy {
                SwapPolicy::Pin => {
                    bump!(self.stats, pinned);
                    SwapOutcome::Pinned {
                        epoch: s.snapshot.epoch(),
                    }
                }
                SwapPolicy::Reject => {
                    bump!(self.stats, stale);
                    return Err(ServeError::Stale {
                        session_epoch: s.snapshot.epoch(),
                        current_epoch: current.epoch(),
                    });
                }
                SwapPolicy::Migrate => {
                    let from_epoch = s.snapshot.epoch();
                    // Shard-level republish fast path: when the new epoch
                    // carries a scope anchored at this session's epoch and
                    // the path avoids every changed slot, the identical
                    // slots are still alive in the new snapshot — swap the
                    // `Arc` in place, no replay, nothing lost. Sessions
                    // inside the republished shard (or more than one epoch
                    // behind) take the ordinary tag-set replay.
                    let in_place = current.scope().is_some_and(|sc| {
                        sc.from_epoch() == from_epoch && !sc.affects_path(&s.path)
                    }) && current.path_is_valid(&s.path);
                    let lost_depth = if in_place {
                        bump!(self.stats, migrated_in_place);
                        0
                    } else {
                        let (path, lost) = replay_path(&s.snapshot, &current, &s.path);
                        s.path = path;
                        bump!(self.stats, migrated);
                        lost
                    };
                    s.snapshot = Arc::clone(&current);
                    SwapOutcome::Migrated {
                        from_epoch,
                        to_epoch: current.epoch(),
                        lost_depth,
                    }
                }
            }
        };

        // Apply the action on the (possibly migrated) snapshot.
        let snap = Arc::clone(&s.snapshot);
        match req.action {
            StepAction::Descend(child) => {
                let here = s.current();
                if !snap.children(here).contains(&child) {
                    return Err(ServeError::Nav(dln_fault::DlnError::invalid_navigation(
                        format!("state {} is not a child of state {}", child.0, here.0),
                    )));
                }
                s.path.push(child);
            }
            StepAction::Backtrack => {
                if s.path.len() > 1 {
                    s.path.pop();
                }
            }
            StepAction::Reset => {
                let walk = std::mem::replace(&mut s.path, vec![snap.root()]);
                s.log.record_walk(&walk);
            }
            StepAction::Stay => {}
        }

        // Deadline accounting: real elapsed time plus virtual charges from
        // the `serve.slow` failpoint (a simulated stall that costs budget
        // without costing test wall-time).
        let mut charged = 0u64;
        if should_fail_keyed("serve.slow", fault_key) {
            charged += self.cfg.slow_penalty_ms;
        }
        let deadline = req.deadline_ms.or(self.cfg.deadline_ms);
        let spent = self.clock.now().saturating_sub(t0) + charged;
        let degraded = deadline.is_some_and(|d| spent > d);
        if degraded {
            bump!(self.stats, degraded);
        }

        // Render the view.
        let here = s.current();
        let probs: Option<Vec<(StateId, f64)>> = match (&req.query, degraded) {
            // Snapshot-cached Eq 1 ranking: bit-identical to
            // `transition_probs_from`, but the child-topic gather is paid
            // once per state per epoch (owned) or at save time (mapped)
            // instead of once per request.
            (Some(q), false) => Some(snap.transition_probs(here, q)),
            _ => None,
        };
        let children = snap
            .children(here)
            .iter()
            .map(|&c| ChildView {
                state: c,
                label: snap.label(c).to_string(),
                prob: probs
                    .as_ref()
                    .and_then(|ps| ps.iter().find(|(sid, _)| *sid == c).map(|(_, p)| *p)),
            })
            .collect();
        let tables = if req.list_tables && !degraded {
            tables_at(&snap, here)
        } else {
            Vec::new()
        };
        Ok(StepResponse {
            session: id,
            epoch: snap.epoch(),
            state: here,
            depth: s.path.len() - 1,
            label: snap.label(here).to_string(),
            at_tag_state: snap.state_tag(here),
            children,
            tables,
            degraded,
            swap,
        })
    }

    fn absorb_evicted(&self, evicted: Vec<EvictedSession>) {
        if evicted.is_empty() {
            return;
        }
        let mut log = lock(&self.log);
        for ev in &evicted {
            log.merge(&ev.log);
            bump!(self.stats, evicted_ttl);
        }
    }
}

/// Tables represented under `sid` (at least one attribute in the state's
/// extent), most-covered first — the serving-layer equivalent of
/// `Navigator::tables_here`, shared by the owned and mapped
/// representations via [`dln_org::OrgView::tables_under`].
pub fn tables_at(snap: &OrgSnapshot, sid: StateId) -> Vec<(TableId, usize)> {
    snap.view().tables_under(sid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use dln_org::{clustering_org, flat_org};
    use dln_synth::TagCloudConfig;

    fn fixture() -> (OrgContext, Organization, Organization) {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let clus = clustering_org(&ctx);
        let flat = flat_org(&ctx);
        (ctx, clus, flat)
    }

    fn service(cfg: ServeConfig) -> (NavService, Arc<ManualClock>, OrgContext, Organization) {
        let (ctx, clus, flat) = fixture();
        let clock = Arc::new(ManualClock::new(0));
        let svc = NavService::with_clock(
            ctx.clone(),
            clus,
            NavConfig::default(),
            cfg,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        (svc, clock, ctx, flat)
    }

    fn query_of(ctx: &OrgContext) -> Vec<f32> {
        ctx.attr(0).unit_topic.clone()
    }

    #[test]
    fn open_step_close_round_trip() {
        let (svc, _clock, ctx, _) = service(ServeConfig::default());
        let sid = svc.open_session_keyed(7).unwrap();
        let mut req = StepRequest::action(StepAction::Stay);
        req.query = Some(query_of(&ctx));
        req.list_tables = true;
        let resp = svc.step(sid, &req).unwrap();
        assert!(!resp.degraded);
        assert_eq!(resp.swap, SwapOutcome::Current);
        assert_eq!(resp.depth, 0);
        assert!(!resp.label.is_empty());
        assert!(!resp.children.is_empty());
        let sum: f64 = resp.children.iter().filter_map(|c| c.prob).sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "ranked children form a distribution"
        );
        assert!(!resp.tables.is_empty(), "root covers some tables");

        // Descend into the best child; depth grows, path stays valid.
        let best = resp
            .children
            .iter()
            .max_by(|a, b| {
                let pa = a.prob.unwrap_or(0.0);
                let pb = b.prob.unwrap_or(0.0);
                pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|c| c.state)
            .unwrap();
        let down = svc
            .step(sid, &StepRequest::action(StepAction::Descend(best)))
            .unwrap();
        assert_eq!(down.depth, 1);
        assert_eq!(down.state, best);
        assert_eq!(svc.session_path(sid).unwrap().len(), 2);
        assert_eq!(svc.validate_live_paths(), (1, 0));

        svc.close_session(sid).unwrap();
        assert_eq!(svc.live_sessions(), 0);
        assert_eq!(svc.merged_log().n_sessions(), 1, "close records the walk");
        assert!(matches!(
            svc.step(sid, &StepRequest::action(StepAction::Stay)),
            Err(ServeError::SessionNotFound { .. })
        ));
    }

    #[test]
    fn invalid_descend_is_typed_and_harmless() {
        let (svc, _clock, _ctx, _) = service(ServeConfig::default());
        let sid = svc.open_session().unwrap();
        let bogus = StateId(u32::MAX - 1);
        let err = svc
            .step(sid, &StepRequest::action(StepAction::Descend(bogus)))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Nav(dln_fault::DlnError::InvalidNavigation { .. })
        ));
        assert_eq!(
            svc.session_path(sid).unwrap().len(),
            1,
            "cursor did not move"
        );
    }

    #[test]
    fn deadline_degrades_instead_of_erroring() {
        let cfg = ServeConfig {
            deadline_ms: Some(100),
            slow_penalty_ms: 500,
            ..ServeConfig::default()
        };
        let (svc, _clock, ctx, _) = service(cfg);
        let sid = svc.open_session_keyed(11).unwrap();
        let mut req = StepRequest::action(StepAction::Stay);
        req.query = Some(query_of(&ctx));
        req.list_tables = true;

        // Within budget: full response.
        let full = svc.step(sid, &req).unwrap();
        assert!(!full.degraded);
        assert!(full.children.iter().all(|c| c.prob.is_some()));

        // serve.slow charges 500 virtual ms against a 100 ms deadline.
        let _fp = dln_fault::scoped("serve.slow:1.0:1").unwrap();
        let slow = svc.step(sid, &req).unwrap();
        assert!(slow.degraded);
        assert_eq!(slow.children.len(), full.children.len());
        assert!(slow.children.iter().all(|c| c.prob.is_none()));
        assert!(
            slow.children.iter().all(|c| !c.label.is_empty()),
            "degraded responses still carry cached labels"
        );
        assert!(slow.tables.is_empty(), "table listing is shed first");
        assert_eq!(svc.stats().degraded.load(Ordering::Relaxed), 1);

        // Per-request override can lift the default deadline.
        let mut roomy = req.clone();
        roomy.deadline_ms = Some(10_000);
        assert!(!svc.step(sid, &roomy).unwrap().degraded);
    }

    #[test]
    fn hot_swap_migrates_sessions_with_valid_paths() {
        let (svc, _clock, ctx, flat) = service(ServeConfig::default());
        let sid = svc.open_session_keyed(3).unwrap();
        // Walk one level down so there is a path to migrate.
        let view = svc
            .step(sid, &StepRequest::action(StepAction::Stay))
            .unwrap();
        let child = view.children[0].state;
        svc.step(sid, &StepRequest::action(StepAction::Descend(child)))
            .unwrap();

        let e1 = svc.publish(ctx.clone(), flat, NavConfig::default());
        assert_eq!(e1, 1);
        let resp = svc
            .step(sid, &StepRequest::action(StepAction::Stay))
            .unwrap();
        match resp.swap {
            SwapOutcome::Migrated {
                from_epoch,
                to_epoch,
                lost_depth,
            } => {
                assert_eq!((from_epoch, to_epoch), (0, 1));
                assert_eq!(resp.depth + lost_depth, 1, "replayed + lost = old depth");
            }
            other => panic!("expected migration, got {other:?}"),
        }
        assert_eq!(resp.epoch, 1);
        assert_eq!(svc.validate_live_paths(), (1, 0));
        assert_eq!(svc.stats().migrated.load(Ordering::Relaxed), 1);
        // Next step is Current again: migration is one-shot.
        let again = svc
            .step(sid, &StepRequest::action(StepAction::Stay))
            .unwrap();
        assert_eq!(again.swap, SwapOutcome::Current);
    }

    #[test]
    fn migrate_replays_across_unsharded_to_sharded_republish() {
        // A live session on an unsharded snapshot survives a republication
        // that installs a *sharded* (router-stitched) organization: the
        // path replays by tag-set identity, the view renders ranked
        // children over the router hop, and descending into a shard root
        // works like any other edge.
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let svc = NavService::new(
            ctx.clone(),
            clustering_org(&ctx),
            NavConfig::default(),
            ServeConfig::default(),
        );
        let sid = svc.open_session().unwrap();
        let q = query_of(&ctx);
        // Walk two levels down the unsharded org.
        for _ in 0..2 {
            let mut req = StepRequest::action(StepAction::Stay);
            req.query = Some(q.clone());
            let view = svc.step(sid, &req).unwrap();
            let Some(best) = view
                .children
                .iter()
                .max_by(|a, b| {
                    a.prob
                        .partial_cmp(&b.prob)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|c| c.state)
            else {
                break;
            };
            svc.step(sid, &StepRequest::action(StepAction::Descend(best)))
                .unwrap();
        }
        let old_depth = svc.session_path(sid).unwrap().len() - 1;
        assert!(old_depth >= 1);

        let sharded = dln_org::build_sharded(
            &bench.lake,
            &dln_org::SearchConfig {
                shards: dln_org::ShardPolicy::Fixed(4),
                max_iters: 80,
                deadline: None,
                checkpoint: None,
                ..Default::default()
            },
        );
        assert!(sharded.n_shards() > 1);
        let e1 = svc.publish(
            sharded.built.ctx,
            sharded.built.organization,
            sharded.built.nav,
        );
        assert_eq!(e1, 1);

        let mut req = StepRequest::action(StepAction::Stay);
        req.query = Some(q.clone());
        let resp = svc.step(sid, &req).unwrap();
        match resp.swap {
            SwapOutcome::Migrated {
                from_epoch,
                to_epoch,
                lost_depth,
            } => {
                assert_eq!((from_epoch, to_epoch), (0, 1));
                assert_eq!(resp.depth + lost_depth, old_depth);
            }
            other => panic!("expected migration, got {other:?}"),
        }
        assert_eq!(svc.validate_live_paths(), (1, 0));
        // If the session landed back at the router, its ranked children
        // are the top of the binary routing tier (not the shard roots —
        // the stitch keeps the router's fan-out at two).
        if resp.depth == 0 {
            assert!(resp.children.len() <= 2 && !resp.children.is_empty());
        }
        let sum: f64 = resp.children.iter().filter_map(|c| c.prob).sum();
        assert!((sum - 1.0).abs() < 1e-9, "router ranking is a distribution");
        let best = resp
            .children
            .iter()
            .max_by(|a, b| {
                a.prob
                    .partial_cmp(&b.prob)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|c| c.state)
            .unwrap();
        let down = svc
            .step(sid, &StepRequest::action(StepAction::Descend(best)))
            .unwrap();
        assert_eq!(down.swap, SwapOutcome::Current);
        assert_eq!(down.depth, resp.depth + 1);
    }

    #[test]
    fn pin_and_reject_swap_policies() {
        for policy in [SwapPolicy::Pin, SwapPolicy::Reject] {
            let cfg = ServeConfig {
                swap_policy: policy,
                ..ServeConfig::default()
            };
            let (svc, _clock, ctx, flat) = service(cfg);
            let sid = svc.open_session().unwrap();
            svc.publish(ctx.clone(), flat, NavConfig::default());
            let out = svc.step(sid, &StepRequest::action(StepAction::Stay));
            match policy {
                SwapPolicy::Pin => {
                    let resp = out.unwrap();
                    assert_eq!(resp.swap, SwapOutcome::Pinned { epoch: 0 });
                    assert_eq!(resp.epoch, 0, "answers keep coming from the old epoch");
                }
                SwapPolicy::Reject => {
                    assert!(matches!(
                        out.unwrap_err(),
                        ServeError::Stale {
                            session_epoch: 0,
                            current_epoch: 1,
                        }
                    ));
                }
                SwapPolicy::Migrate => unreachable!(),
            }
        }
    }

    #[test]
    fn drop_session_failpoint_is_a_typed_injected_loss() {
        let (svc, _clock, _ctx, _) = service(ServeConfig::default());
        let sid = svc.open_session_keyed(42).unwrap();
        let _fp = dln_fault::scoped("serve.drop_session:1.0:1").unwrap();
        let err = svc
            .step(sid, &StepRequest::action(StepAction::Stay))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::SessionExpired { injected: true, .. }
        ));
        assert_eq!(svc.live_sessions(), 0);
        assert_eq!(svc.stats().dropped_fault.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shed_requests_get_typed_overloaded() {
        let cfg = ServeConfig {
            max_concurrency: 1,
            queue_depth: 0,
            retry_base_ms: 10,
            ..ServeConfig::default()
        };
        let (svc, _clock, _ctx, _) = service(cfg);
        let sid = svc.open_session().unwrap();
        let _held = svc.gate().admit().unwrap();
        let err = svc
            .step(sid, &StepRequest::action(StepAction::Stay))
            .unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { .. }));
        assert_eq!(svc.stats().overloaded.load(Ordering::Relaxed), 1);
        drop(_held);
        svc.step(sid, &StepRequest::action(StepAction::Stay))
            .unwrap();
    }

    #[test]
    fn ttl_eviction_merges_logs_and_config_reads_env() {
        let cfg = ServeConfig {
            session_ttl_ms: 100,
            ..ServeConfig::default()
        };
        let (svc, clock, _ctx, _) = service(cfg);
        let sid = svc.open_session().unwrap();
        svc.step(sid, &StepRequest::action(StepAction::Stay))
            .unwrap();
        clock.advance(500);
        assert_eq!(svc.sweep_expired(), 1);
        assert_eq!(svc.stats().evicted_ttl.load(Ordering::Relaxed), 1);
        assert_eq!(
            svc.merged_log().n_sessions(),
            1,
            "evicted session's walk survives in the merged log"
        );
        assert!(matches!(
            svc.step(sid, &StepRequest::action(StepAction::Stay)),
            Err(ServeError::SessionNotFound { .. })
        ));

        // from_env: 0 deadline means none.
        let dflt = ServeConfig::from_env();
        assert!(dflt.max_sessions >= 1);
        assert!(dflt.max_concurrency >= 1);
        assert_eq!(dflt.queue_depth, 2 * dflt.max_concurrency);
    }
}
