//! The serving layer's typed error surface.
//!
//! Every way a request can be refused has its own variant, and every
//! variant tells the client what to *do about it*: [`Overloaded`] carries
//! a retry-after hint, [`Stale`] carries both epochs so the client knows a
//! re-open will land on fresh structure, [`SessionExpired`] distinguishes
//! injected chaos drops from real TTL expiry. Navigation-level failures
//! (descending into a non-child) pass through as the workspace
//! [`DlnError`] taxonomy.
//!
//! [`Overloaded`]: ServeError::Overloaded
//! [`Stale`]: ServeError::Stale
//! [`SessionExpired`]: ServeError::SessionExpired

use dln_fault::DlnError;

use crate::registry::SessionId;

/// Convenience alias for serving-layer results.
pub type ServeResult<T> = Result<T, ServeError>;

/// Every recoverable way the navigation service can refuse a request.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control shed this request: the concurrency limit is
    /// reached and the wait queue is full. Retry after the suggested
    /// backoff (see [`RetryPolicy`](crate::retry::RetryPolicy)).
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The bounded session registry is at capacity (after TTL eviction);
    /// no new session can be opened until one closes or expires.
    SessionLimit {
        /// The registry's configured capacity.
        capacity: usize,
    },
    /// No session with this id exists (never opened, already closed, or
    /// evicted long ago).
    SessionNotFound {
        /// The offending id.
        session: SessionId,
    },
    /// The session existed but is gone: TTL-evicted, or torn down by the
    /// `serve.drop_session` failpoint (`injected = true`). The client
    /// should open a fresh session.
    SessionExpired {
        /// The offending id.
        session: SessionId,
        /// True when a fault-injection failpoint dropped the session (so
        /// chaos tests can separate injected losses from real ones).
        injected: bool,
    },
    /// The session's pinned snapshot epoch is behind the published one and
    /// the service's swap policy is [`SwapPolicy::Reject`]: the client
    /// must re-open to navigate the fresh organization.
    ///
    /// [`SwapPolicy::Reject`]: crate::service::SwapPolicy::Reject
    Stale {
        /// Epoch the session was navigating.
        session_epoch: u64,
        /// Epoch currently published.
        current_epoch: u64,
    },
    /// A navigation-level failure (e.g. descending into a state that is
    /// not a child of the current one); the session is unharmed.
    Nav(DlnError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms} ms")
            }
            ServeError::SessionLimit { capacity } => {
                write!(f, "session registry full ({capacity} sessions)")
            }
            ServeError::SessionNotFound { session } => {
                write!(f, "no such session: {}", session.0)
            }
            ServeError::SessionExpired { session, injected } => write!(
                f,
                "session {} expired{}",
                session.0,
                if *injected { " (injected fault)" } else { "" }
            ),
            ServeError::Stale {
                session_epoch,
                current_epoch,
            } => write!(
                f,
                "stale snapshot: session pinned epoch {session_epoch}, current is {current_epoch}"
            ),
            ServeError::Nav(e) => write!(f, "navigation error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Nav(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DlnError> for ServeError {
    fn from(e: DlnError) -> ServeError {
        ServeError::Nav(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::Overloaded { retry_after_ms: 40 }, "retry after"),
            (ServeError::SessionLimit { capacity: 8 }, "full"),
            (
                ServeError::SessionNotFound {
                    session: SessionId(3),
                },
                "no such session",
            ),
            (
                ServeError::SessionExpired {
                    session: SessionId(3),
                    injected: true,
                },
                "injected",
            ),
            (
                ServeError::Stale {
                    session_epoch: 1,
                    current_epoch: 2,
                },
                "stale",
            ),
            (
                ServeError::Nav(DlnError::invalid_navigation("x")),
                "navigation error",
            ),
        ];
        for (e, needle) in cases {
            let s = e.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
    }

    #[test]
    fn nav_variant_exposes_source() {
        use std::error::Error as _;
        assert!(ServeError::Nav(DlnError::invalid_navigation("x"))
            .source()
            .is_some());
        assert!(ServeError::Overloaded { retry_after_ms: 1 }
            .source()
            .is_none());
    }
}
