//! The transport-independent request/response surface of [`NavService`].
//!
//! The service's native API is a set of typed methods (`open_session`,
//! `step`, `close_session`, …) returning typed errors. A network front-end
//! needs the same surface as *data*: one request enum, one response enum,
//! and a single [`NavService::dispatch`] entry point that maps between
//! them. Keeping the enums here (not in the wire crate) means any
//! transport — the epoll front-end in `dln-net`, a future shared-memory
//! ring, a test harness — serializes exactly the same types the library
//! serves, which is what makes "wire sessions are bit-identical to
//! library sessions" a checkable property instead of a hope.
//!
//! [`WireError`] flattens [`ServeError`] into an owned, comparable,
//! transport-friendly form (the native error holds a non-`Clone`
//! [`std::io::Error`] inside its `Nav` variant). The mapping is lossless
//! for every field a client acts on — retry hints, epochs, session ids,
//! the injected-fault marker — and keeps the navigation error's message.

use dln_org::StateId;

use crate::error::ServeError;
use crate::registry::SessionId;
use crate::service::{NavService, StepRequest, StepResponse};

/// One request against a [`NavService`], as data. What the network
/// front-end deserializes a frame into.
#[derive(Debug, Clone)]
pub enum ApiRequest {
    /// Liveness probe; answered with [`ApiResponse::Pong`] without
    /// touching the gate or the registry.
    Ping,
    /// Open a session with the given deterministic fault key (see
    /// [`NavService::open_session_keyed`]).
    Open {
        /// Caller-supplied key for per-session failpoint draws.
        fault_key: u64,
    },
    /// One navigation step on an open session.
    Step {
        /// The session to step.
        session: SessionId,
        /// The navigation request.
        req: StepRequest,
    },
    /// The session's current root-anchored path.
    Path {
        /// The session to inspect.
        session: SessionId,
    },
    /// Close a session, merging its walk log into the service log.
    Close {
        /// The session to close.
        session: SessionId,
    },
}

/// The response to one [`ApiRequest`]. Every refusal is a typed
/// [`WireError`]; transport-level failures never appear here.
#[derive(Debug, Clone)]
pub enum ApiResponse {
    /// Answer to [`ApiRequest::Ping`].
    Pong,
    /// The session opened by [`ApiRequest::Open`].
    Opened {
        /// The fresh session's handle.
        session: SessionId,
    },
    /// The view after a successful [`ApiRequest::Step`].
    Step(StepResponse),
    /// Answer to [`ApiRequest::Path`].
    Path {
        /// The inspected session.
        session: SessionId,
        /// Its root-anchored path.
        path: Vec<StateId>,
    },
    /// Acknowledges [`ApiRequest::Close`].
    Closed {
        /// The closed session.
        session: SessionId,
    },
    /// A typed refusal (see [`WireError`]).
    Error(WireError),
}

/// [`ServeError`] flattened into an owned, `Clone + PartialEq`,
/// transport-friendly form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Admission control shed the request; retry after the hint.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The session registry is at capacity.
    SessionLimit {
        /// The registry's configured capacity.
        capacity: u64,
    },
    /// No session with this id exists.
    SessionNotFound {
        /// The offending id.
        session: SessionId,
    },
    /// The session existed but is gone (TTL or injected fault).
    SessionExpired {
        /// The offending id.
        session: SessionId,
        /// True when a failpoint dropped the session.
        injected: bool,
    },
    /// The session's epoch is behind the published one under
    /// [`SwapPolicy::Reject`](crate::service::SwapPolicy::Reject).
    Stale {
        /// Epoch the session was navigating.
        session_epoch: u64,
        /// Epoch currently published.
        current_epoch: u64,
    },
    /// A navigation-level failure, carried as its display message.
    Nav {
        /// The underlying error's message.
        message: String,
    },
}

impl From<&ServeError> for WireError {
    fn from(e: &ServeError) -> WireError {
        match e {
            ServeError::Overloaded { retry_after_ms } => WireError::Overloaded {
                retry_after_ms: *retry_after_ms,
            },
            ServeError::SessionLimit { capacity } => WireError::SessionLimit {
                capacity: *capacity as u64,
            },
            ServeError::SessionNotFound { session } => {
                WireError::SessionNotFound { session: *session }
            }
            ServeError::SessionExpired { session, injected } => WireError::SessionExpired {
                session: *session,
                injected: *injected,
            },
            ServeError::Stale {
                session_epoch,
                current_epoch,
            } => WireError::Stale {
                session_epoch: *session_epoch,
                current_epoch: *current_epoch,
            },
            ServeError::Nav(inner) => WireError::Nav {
                message: inner.to_string(),
            },
        }
    }
}

impl From<WireError> for ServeError {
    /// Rehydrate the client-side [`ServeError`] a caller (and
    /// [`RetryPolicy`](crate::retry::RetryPolicy)) can act on. The `Nav`
    /// variant comes back as an invalid-navigation error carrying the
    /// original message.
    fn from(e: WireError) -> ServeError {
        match e {
            WireError::Overloaded { retry_after_ms } => ServeError::Overloaded { retry_after_ms },
            WireError::SessionLimit { capacity } => ServeError::SessionLimit {
                capacity: capacity as usize,
            },
            WireError::SessionNotFound { session } => ServeError::SessionNotFound { session },
            WireError::SessionExpired { session, injected } => {
                ServeError::SessionExpired { session, injected }
            }
            WireError::Stale {
                session_epoch,
                current_epoch,
            } => ServeError::Stale {
                session_epoch,
                current_epoch,
            },
            WireError::Nav { message } => {
                // The wire message came from the native error's Display,
                // which prefixes "invalid navigation: " — strip it before
                // re-wrapping so repeated wire↔native hops are idempotent.
                let inner = message
                    .strip_prefix("invalid navigation: ")
                    .map(str::to_string)
                    .unwrap_or(message);
                ServeError::Nav(dln_fault::DlnError::invalid_navigation(inner))
            }
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render through the native error so clients see one vocabulary.
        write!(f, "{}", ServeError::from(self.clone()))
    }
}

impl NavService {
    /// Serve one [`ApiRequest`]. This is the *only* entry point a
    /// transport needs: every typed method outcome, success or refusal,
    /// comes back as an [`ApiResponse`] — so a remote walk through a
    /// serializer and this method is step-for-step identical to a local
    /// walk through the typed methods themselves.
    pub fn dispatch(&self, req: &ApiRequest) -> ApiResponse {
        match req {
            ApiRequest::Ping => ApiResponse::Pong,
            ApiRequest::Open { fault_key } => match self.open_session_keyed(*fault_key) {
                Ok(session) => ApiResponse::Opened { session },
                Err(e) => ApiResponse::Error(WireError::from(&e)),
            },
            ApiRequest::Step { session, req } => match self.step(*session, req) {
                Ok(resp) => ApiResponse::Step(resp),
                Err(e) => ApiResponse::Error(WireError::from(&e)),
            },
            ApiRequest::Path { session } => match self.session_path(*session) {
                Ok(path) => ApiResponse::Path {
                    session: *session,
                    path,
                },
                Err(e) => ApiResponse::Error(WireError::from(&e)),
            },
            ApiRequest::Close { session } => match self.close_session(*session) {
                Ok(()) => ApiResponse::Closed { session: *session },
                Err(e) => ApiResponse::Error(WireError::from(&e)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServeConfig, StepAction};
    use dln_org::eval::NavConfig;
    use dln_org::{clustering_org, OrgContext};
    use dln_synth::TagCloudConfig;

    fn service() -> NavService {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        NavService::new(ctx, org, NavConfig::default(), ServeConfig::default())
    }

    #[test]
    fn dispatch_round_trip_matches_typed_methods() {
        let svc = service();
        assert!(matches!(svc.dispatch(&ApiRequest::Ping), ApiResponse::Pong));
        let ApiResponse::Opened { session } = svc.dispatch(&ApiRequest::Open { fault_key: 7 })
        else {
            panic!("open refused on a fresh service");
        };
        let ApiResponse::Step(view) = svc.dispatch(&ApiRequest::Step {
            session,
            req: StepRequest::action(StepAction::Stay),
        }) else {
            panic!("step refused");
        };
        assert_eq!(view.session, session);
        assert_eq!(view.depth, 0);
        let ApiResponse::Path { path, .. } = svc.dispatch(&ApiRequest::Path { session }) else {
            panic!("path refused");
        };
        assert_eq!(path.len(), 1);
        assert!(matches!(
            svc.dispatch(&ApiRequest::Close { session }),
            ApiResponse::Closed { .. }
        ));
        // A closed session refuses with the same typed error the method
        // returns.
        match svc.dispatch(&ApiRequest::Path { session }) {
            ApiResponse::Error(WireError::SessionNotFound { session: s }) => {
                assert_eq!(s, session)
            }
            other => panic!("expected SessionNotFound, got {other:?}"),
        }
    }

    #[test]
    fn wire_error_round_trips_every_variant() {
        let sid = SessionId(9);
        let natives = [
            ServeError::Overloaded { retry_after_ms: 40 },
            ServeError::SessionLimit { capacity: 8 },
            ServeError::SessionNotFound { session: sid },
            ServeError::SessionExpired {
                session: sid,
                injected: true,
            },
            ServeError::Stale {
                session_epoch: 1,
                current_epoch: 2,
            },
            ServeError::Nav(dln_fault::DlnError::invalid_navigation("nope")),
        ];
        for native in natives {
            let wire = WireError::from(&native);
            let back = ServeError::from(wire.clone());
            // The round trip preserves the display message (the `Nav`
            // variant keeps the inner message inside a fresh wrapper).
            match (&native, &back) {
                (ServeError::Nav(_), ServeError::Nav(inner)) => {
                    assert!(inner.to_string().contains("nope"))
                }
                _ => assert_eq!(native.to_string(), back.to_string()),
            }
            assert_eq!(wire, WireError::from(&back));
        }
    }
}
