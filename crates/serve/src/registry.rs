//! Bounded session registry with TTL eviction.
//!
//! A session is the unit of navigation state the service keeps on behalf
//! of one agent: which snapshot it is navigating (pinned by `Arc`, so a
//! hot-swap cannot pull the organization out from under it), the path from
//! the root, and the per-session [`NavigationLog`] that is merged into the
//! service-wide log at close or eviction (walks observed only while a
//! session is live must not be lost when it times out — the paper's §6
//! reorganization loop feeds on exactly these logs).
//!
//! The registry is *bounded*: at most `capacity` live sessions. Open
//! first evicts everything past its TTL (so an idle-session pileup cannot
//! wedge new traffic), then refuses with a typed
//! [`SessionLimit`](crate::ServeError::SessionLimit) if still full.
//! Eviction order is ascending session id — a deterministic function of
//! (registry contents, clock reading), never of thread arrival order.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dln_org::{NavigationLog, StateId};

use crate::error::{ServeError, ServeResult};
use crate::snapshot::OrgSnapshot;

/// Opaque session handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One agent's live navigation state.
pub struct Session {
    /// The session's handle.
    pub id: SessionId,
    /// The snapshot this session is navigating; holding the `Arc` pins the
    /// epoch until the session migrates or closes.
    pub snapshot: Arc<OrgSnapshot>,
    /// Root-anchored path of the session's current position.
    pub path: Vec<StateId>,
    /// Walks recorded by this session, merged into the service log on
    /// close/eviction.
    pub log: NavigationLog,
    /// Clock reading of the last request touching this session.
    pub last_active: u64,
    /// Number of navigation steps served.
    pub steps: u64,
    /// Deterministic key for per-session failpoint draws. Supplied by the
    /// caller (e.g. an agent seed) so fault schedules do not depend on the
    /// racy order in which sessions happen to be opened.
    pub fault_key: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("epoch", &self.snapshot.epoch())
            .field("depth", &(self.path.len().saturating_sub(1)))
            .field("last_active", &self.last_active)
            .field("steps", &self.steps)
            .finish()
    }
}

impl Session {
    /// Current position (deepest path state).
    pub fn current(&self) -> StateId {
        self.path
            .last()
            .copied()
            .unwrap_or_else(|| self.snapshot.root())
    }
}

/// A session that was removed from the registry, with why.
pub struct EvictedSession {
    /// The evicted handle.
    pub id: SessionId,
    /// The session's accumulated walk log (for merging upstream).
    pub log: NavigationLog,
}

/// Bounded map of live sessions.
pub struct SessionRegistry {
    sessions: BTreeMap<u64, Arc<Mutex<Session>>>,
    capacity: usize,
    ttl: u64,
    next_id: u64,
}

impl SessionRegistry {
    /// A registry holding at most `capacity` sessions, each expiring after
    /// `ttl` clock units of inactivity.
    pub fn new(capacity: usize, ttl: u64) -> SessionRegistry {
        SessionRegistry {
            sessions: BTreeMap::new(),
            capacity: capacity.max(1),
            ttl,
            next_id: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Open a session rooted at `snapshot`'s root. Evicts expired sessions
    /// first; refuses with [`ServeError::SessionLimit`] when still at
    /// capacity. `fault_key` seeds the session's deterministic failpoint
    /// draws; `evicted` receives any sessions TTL-evicted to make room.
    pub fn open(
        &mut self,
        snapshot: Arc<OrgSnapshot>,
        now: u64,
        fault_key: u64,
        evicted: &mut Vec<EvictedSession>,
    ) -> ServeResult<SessionId> {
        if self.sessions.len() >= self.capacity {
            evicted.extend(self.evict_expired(now));
        }
        if self.sessions.len() >= self.capacity {
            return Err(ServeError::SessionLimit {
                capacity: self.capacity,
            });
        }
        let id = SessionId(self.next_id);
        self.next_id += 1;
        let root = snapshot.root();
        let session = Session {
            id,
            snapshot,
            path: vec![root],
            log: NavigationLog::new(),
            last_active: now,
            steps: 0,
            fault_key,
        };
        self.sessions.insert(id.0, Arc::new(Mutex::new(session)));
        Ok(id)
    }

    /// Look up a live session. `now` is used to *check* expiry (an expired
    /// session is evicted on sight and reported as such), and to refresh
    /// `last_active` on hit.
    pub fn touch(
        &mut self,
        id: SessionId,
        now: u64,
        evicted: &mut Vec<EvictedSession>,
    ) -> ServeResult<Arc<Mutex<Session>>> {
        let Some(slot) = self.sessions.get(&id.0) else {
            return Err(ServeError::SessionNotFound { session: id });
        };
        let expired = {
            let s = lock(slot);
            now.saturating_sub(s.last_active) > self.ttl
        };
        if expired {
            if let Some(slot) = self.sessions.remove(&id.0) {
                evicted.push(finalize(id, &slot));
            }
            return Err(ServeError::SessionExpired {
                session: id,
                injected: false,
            });
        }
        let slot = Arc::clone(slot);
        lock(&slot).last_active = now;
        Ok(slot)
    }

    /// Close a session, returning its accumulated log (with the final walk
    /// recorded into it).
    pub fn close(&mut self, id: SessionId) -> ServeResult<NavigationLog> {
        let Some(slot) = self.sessions.remove(&id.0) else {
            return Err(ServeError::SessionNotFound { session: id });
        };
        Ok(finalize(id, &slot).log)
    }

    /// Drop a session without ceremony (the `serve.drop_session` chaos
    /// failpoint: simulates a crashed worker losing its in-memory session).
    /// The log is *discarded*, as a crash would discard it.
    pub fn drop_abrupt(&mut self, id: SessionId) -> bool {
        self.sessions.remove(&id.0).is_some()
    }

    /// Evict every session idle longer than the TTL. Iterates in ascending
    /// id order, so the eviction set is a pure function of (contents, now).
    pub fn evict_expired(&mut self, now: u64) -> Vec<EvictedSession> {
        let ttl = self.ttl;
        let dead: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, slot)| now.saturating_sub(lock(slot).last_active) > ttl)
            .map(|(id, _)| *id)
            .collect();
        let mut out = Vec::with_capacity(dead.len());
        for id in dead {
            if let Some(slot) = self.sessions.remove(&id) {
                out.push(finalize(SessionId(id), &slot));
            }
        }
        out
    }

    /// Snapshot of the live session ids, ascending.
    pub fn ids(&self) -> Vec<SessionId> {
        self.sessions.keys().map(|k| SessionId(*k)).collect()
    }

    /// Look up a session without refreshing `last_active` and without the
    /// expiry check (diagnostics — e.g. validating live paths after a
    /// hot-swap).
    pub fn peek(&self, id: SessionId) -> Option<Arc<Mutex<Session>>> {
        self.sessions.get(&id.0).map(Arc::clone)
    }
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Drain a removed session into an [`EvictedSession`], recording its final
/// walk (the path it ended on) so the merged log keeps the session's
/// navigation evidence.
fn finalize(id: SessionId, slot: &Mutex<Session>) -> EvictedSession {
    let mut s = lock(slot);
    let path = std::mem::take(&mut s.path);
    let mut log = std::mem::take(&mut s.log);
    log.record_walk(&path);
    EvictedSession { id, log }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_org::eval::NavConfig;
    use dln_org::{clustering_org, OrgContext};
    use dln_synth::TagCloudConfig;

    fn snap() -> Arc<OrgSnapshot> {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        Arc::new(OrgSnapshot::new(
            0,
            Arc::new(ctx),
            Arc::new(org),
            NavConfig::default(),
        ))
    }

    #[test]
    fn open_respects_capacity_and_reports_typed_limit() {
        let snap = snap();
        let mut reg = SessionRegistry::new(2, 100);
        let mut ev = Vec::new();
        reg.open(Arc::clone(&snap), 0, 1, &mut ev).unwrap();
        reg.open(Arc::clone(&snap), 0, 2, &mut ev).unwrap();
        let err = reg.open(Arc::clone(&snap), 10, 3, &mut ev).unwrap_err();
        assert!(matches!(err, ServeError::SessionLimit { capacity: 2 }));
        assert!(ev.is_empty(), "nothing was expired at t=10");
    }

    #[test]
    fn ttl_eviction_is_deterministic_and_frees_capacity() {
        let snap = snap();
        let mut reg = SessionRegistry::new(2, 100);
        let mut ev = Vec::new();
        let a = reg.open(Arc::clone(&snap), 0, 1, &mut ev).unwrap();
        let b = reg.open(Arc::clone(&snap), 50, 2, &mut ev).unwrap();
        // t=120: a (idle 120) is past TTL, b (idle 70) is not.
        let c = reg.open(Arc::clone(&snap), 120, 3, &mut ev).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].id, a);
        assert_ne!(c, a);
        assert_eq!(reg.ids(), vec![b, c]);
    }

    #[test]
    fn touch_refreshes_and_expires() {
        let snap = snap();
        let mut reg = SessionRegistry::new(4, 100);
        let mut ev = Vec::new();
        let a = reg.open(Arc::clone(&snap), 0, 1, &mut ev).unwrap();
        // Touch at 90 refreshes; 190 is within TTL of 90.
        reg.touch(a, 90, &mut ev).unwrap();
        reg.touch(a, 190, &mut ev).unwrap();
        // 291 is 101 past 190: expired.
        let err = reg.touch(a, 291, &mut ev).unwrap_err();
        assert!(matches!(
            err,
            ServeError::SessionExpired {
                injected: false,
                ..
            }
        ));
        assert_eq!(ev.len(), 1, "expired-on-sight session yields its log");
        let err2 = reg.touch(a, 291, &mut ev).unwrap_err();
        assert!(matches!(err2, ServeError::SessionNotFound { .. }));
    }

    #[test]
    fn close_returns_log_and_drop_discards_it() {
        let snap = snap();
        let mut reg = SessionRegistry::new(4, 100);
        let mut ev = Vec::new();
        let a = reg.open(Arc::clone(&snap), 0, 1, &mut ev).unwrap();
        let root = snap.root();
        {
            let slot = reg.touch(a, 1, &mut ev).unwrap();
            let mut s = lock(&slot);
            s.log.record_walk(&[root]);
        }
        let log = reg.close(a).unwrap();
        // One walk recorded explicitly above + the final walk on close.
        assert_eq!(log.n_sessions(), 2);
        assert!(log.visits(root) >= 2);
        assert!(matches!(
            reg.close(a),
            Err(ServeError::SessionNotFound { .. })
        ));
        let b = reg.open(Arc::clone(&snap), 0, 2, &mut ev).unwrap();
        assert!(reg.drop_abrupt(b));
        assert!(!reg.drop_abrupt(b));
    }
}
