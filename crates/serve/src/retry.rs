//! Client-side retry with exponential backoff and deterministic jitter.
//!
//! The server's half of load shedding is the typed
//! [`Overloaded`](crate::ServeError::Overloaded) refusal; this is the
//! client's half. [`RetryPolicy`] computes capped exponential backoff with
//! *deterministic* jitter (a splitmix64 hash of the policy seed and the
//! attempt index — two clients with different seeds desynchronize, one
//! client replays identically), and [`RetryPolicy::run`] drives an
//! operation through it, honoring the server's `retry_after_ms` hint when
//! it exceeds the local backoff. Only `Overloaded` is retried: every other
//! refusal is a fact a retry cannot change.

use crate::error::{ServeError, ServeResult};

/// Exponential-backoff retry schedule with deterministic jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// First-retry backoff, in milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per attempt (2 = classic doubling).
    pub factor: u64,
    /// Cap on the pre-jitter backoff.
    pub max_backoff_ms: u64,
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Seed for the jitter stream; distinct per client.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ms: 10,
            factor: 2,
            max_backoff_ms: 500,
            max_attempts: 5,
            jitter_seed: 0,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based: attempt 1 is
    /// the first retry). Deterministic in `(self, attempt)`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(self.factor.saturating_pow(attempt.saturating_sub(1)))
            .min(self.max_backoff_ms);
        // Full jitter over [exp/2, exp]: keeps the cap meaningful while
        // decorrelating clients that shed at the same instant.
        let half = exp / 2;
        if half == 0 {
            return exp;
        }
        let r =
            splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407));
        half + r % (exp - half + 1)
    }

    /// Run `op`, retrying on [`ServeError::Overloaded`] up to
    /// `max_attempts` total attempts. Each wait is
    /// `max(backoff_ms(attempt), server retry_after hint)` and is performed
    /// by `sleep`, injected so tests can count waits instead of waiting.
    pub fn run<T>(
        &self,
        mut sleep: impl FnMut(u64),
        mut op: impl FnMut() -> ServeResult<T>,
    ) -> ServeResult<T> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op() {
                Err(ServeError::Overloaded { retry_after_ms }) if attempt < attempts => {
                    sleep(self.backoff_ms(attempt).max(retry_after_ms));
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_replays() {
        let p = RetryPolicy {
            base_ms: 10,
            factor: 2,
            max_backoff_ms: 80,
            max_attempts: 8,
            jitter_seed: 42,
        };
        let seq: Vec<u64> = (1..=6).map(|a| p.backoff_ms(a)).collect();
        let again: Vec<u64> = (1..=6).map(|a| p.backoff_ms(a)).collect();
        assert_eq!(seq, again, "jitter is deterministic per (seed, attempt)");
        for (i, &b) in seq.iter().enumerate() {
            let exp = (10u64 << i).min(80);
            assert!(
                b >= exp / 2 && b <= exp,
                "attempt {}: {} not in [{}, {}]",
                i + 1,
                b,
                exp / 2,
                exp
            );
        }
        let other = RetryPolicy {
            jitter_seed: 43,
            ..p
        };
        assert_ne!(
            (1..=6).map(|a| other.backoff_ms(a)).collect::<Vec<_>>(),
            seq,
            "different seeds desynchronize"
        );
    }

    #[test]
    fn run_retries_only_overloaded_and_honors_hint() {
        let p = RetryPolicy {
            base_ms: 10,
            factor: 2,
            max_backoff_ms: 80,
            max_attempts: 4,
            jitter_seed: 7,
        };
        // Succeeds on the third attempt; second shed carries a large hint.
        let mut calls = 0;
        let mut waits = Vec::new();
        let out = p.run(
            |ms| waits.push(ms),
            || {
                calls += 1;
                match calls {
                    1 => Err(ServeError::Overloaded { retry_after_ms: 0 }),
                    2 => Err(ServeError::Overloaded {
                        retry_after_ms: 1000,
                    }),
                    _ => Ok(calls),
                }
            },
        );
        assert_eq!(out.unwrap(), 3);
        assert_eq!(waits.len(), 2);
        assert_eq!(waits[0], p.backoff_ms(1));
        assert_eq!(waits[1], 1000, "server hint dominates local backoff");

        // Non-overload errors surface immediately.
        let mut calls = 0;
        let err = p.run(
            |_| panic!("must not sleep"),
            || -> ServeResult<()> {
                calls += 1;
                Err(ServeError::SessionLimit { capacity: 1 })
            },
        );
        assert!(matches!(err, Err(ServeError::SessionLimit { .. })));
        assert_eq!(calls, 1);

        // Exhaustion returns the last Overloaded.
        let mut calls = 0;
        let err = p.run(
            |_| {},
            || -> ServeResult<()> {
                calls += 1;
                Err(ServeError::Overloaded { retry_after_ms: 1 })
            },
        );
        assert!(matches!(err, Err(ServeError::Overloaded { .. })));
        assert_eq!(calls, 4, "max_attempts total attempts");
    }
}
