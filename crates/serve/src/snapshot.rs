//! Immutable organization snapshots and epoch-based hot-swap.
//!
//! A [`OrgSnapshot`] bundles everything a navigation request needs —
//! context, organization DAG, navigation-model parameters — behind `Arc`s,
//! plus a shared lazily-filled label cache (state labels are pure string
//! renderings of immutable structure, so one computation serves every
//! session). Snapshots are never mutated after publication: a re-optimized
//! organization is installed by [`SnapshotStore::publish`], which swaps the
//! *whole* `Arc` under a short write lock and bumps the epoch. Readers
//! clone the `Arc` under a read lock, so a request observes either the old
//! snapshot or the new one in its entirety — never a torn mix (the paper's
//! extended version re-optimizes organizations as the lake evolves; this
//! is the mechanism that lets serving ride through those republications).
//!
//! Sessions that were navigating the previous epoch are reconciled by
//! [`replay_path`]: states are matched across snapshots by their *tag
//! sets* (the semantic identity of a state — slot ids are allocation
//! accidents), walking the old path down the new DAG for as long as edges
//! with the same tag sets exist. The unreplayable suffix is reported as
//! `lost_depth` so the client can tell the user "you were moved up N
//! levels by a reorganization" instead of silently teleporting them.

use std::sync::{Arc, Mutex, OnceLock, RwLock};

use dln_org::eval::NavConfig;
use dln_org::{transition_probs_from_mat, OrgContext, Organization, StateId};

/// An immutable, shareable view of one published organization.
pub struct OrgSnapshot {
    epoch: u64,
    ctx: Arc<OrgContext>,
    org: Arc<Organization>,
    nav: NavConfig,
    /// Per-slot display labels, computed on first use and shared by every
    /// session on this snapshot.
    labels: Vec<OnceLock<String>>,
    /// Per-slot row-major `n_children × dim` child unit-topic matrices for
    /// the Eq 1 transition ranking, computed on first use and shared by
    /// every session — structure is immutable after publication, so one
    /// gather pays for the whole epoch and each request's ranking becomes
    /// a single streaming mat-vec over contiguous memory.
    child_mats: Vec<OnceLock<Vec<f32>>>,
}

impl OrgSnapshot {
    /// Wrap a context + organization as the snapshot for `epoch`.
    pub fn new(epoch: u64, ctx: Arc<OrgContext>, org: Arc<Organization>, nav: NavConfig) -> Self {
        let mut labels = Vec::with_capacity(org.n_slots());
        labels.resize_with(org.n_slots(), OnceLock::new);
        let mut child_mats = Vec::with_capacity(org.n_slots());
        child_mats.resize_with(org.n_slots(), OnceLock::new);
        OrgSnapshot {
            epoch,
            ctx,
            org,
            nav,
            labels,
            child_mats,
        }
    }

    /// The epoch this snapshot was published at (0 = the initial one).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The organization's context universe.
    #[inline]
    pub fn ctx(&self) -> &OrgContext {
        &self.ctx
    }

    /// The organization DAG.
    #[inline]
    pub fn org(&self) -> &Organization {
        &self.org
    }

    /// Navigation-model parameters.
    #[inline]
    pub fn nav(&self) -> NavConfig {
        self.nav
    }

    /// Display label of a state (§4.4 labelling scheme), cached across all
    /// sessions of this snapshot.
    pub fn label(&self, sid: StateId) -> &str {
        self.labels[sid.index()].get_or_init(|| self.org.label(&self.ctx, sid, 2))
    }

    /// Eq 1 transition probabilities out of `sid` for a query topic,
    /// served from the snapshot's cached child-topic matrix —
    /// **bit-identical** to
    /// [`dln_org::transition_probs_from`] (the cached path runs the same
    /// dot kernel row-by-row and the same softmax), but without re-walking
    /// the children's scattered topic vectors on every request.
    pub fn transition_probs(&self, sid: StateId, query_unit: &[f32]) -> Vec<(StateId, f64)> {
        let mat = self.child_mats[sid.index()].get_or_init(|| {
            let children = &self.org.state(sid).children;
            let mut m = Vec::with_capacity(children.len() * self.ctx.dim());
            for &c in children {
                m.extend_from_slice(&self.org.state(c).unit_topic);
            }
            m
        });
        transition_probs_from_mat(&self.org, self.nav, sid, mat, query_unit)
    }

    /// Is `path` a root-anchored chain of alive edges on this snapshot?
    pub fn path_is_valid(&self, path: &[StateId]) -> bool {
        let Some(&first) = path.first() else {
            return false;
        };
        if first != self.org.root() {
            return false;
        }
        path.iter()
            .all(|s| s.index() < self.org.n_slots() && self.org.state(*s).alive)
            && path
                .windows(2)
                .all(|w| self.org.state(w[0]).children.contains(&w[1]))
    }
}

/// Replay `path` (valid on `old`) onto `new`, matching states by tag set.
///
/// Returns the deepest replayable prefix (always at least the new root)
/// and the number of trailing old-path states that could not be matched.
pub fn replay_path(
    old: &OrgSnapshot,
    new: &OrgSnapshot,
    path: &[StateId],
) -> (Vec<StateId>, usize) {
    let mut replayed = vec![new.org.root()];
    // A different tag universe (republication over a different lake or tag
    // group) makes tag-set identity meaningless: keep only the root.
    if old.ctx.n_tags() != new.ctx.n_tags() {
        return (replayed, path.len().saturating_sub(1));
    }
    for old_sid in path.iter().skip(1) {
        let want = &old.org.state(*old_sid).tags;
        let here = *replayed.last().unwrap_or(&new.org.root());
        let next = new
            .org
            .state(here)
            .children
            .iter()
            .copied()
            .find(|c| new.org.state(*c).alive && &new.org.state(*c).tags == want);
        match next {
            Some(c) => replayed.push(c),
            None => break,
        }
    }
    let lost = path.len() - replayed.len();
    (replayed, lost)
}

/// The epoch-versioned publication point: one current snapshot, swapped
/// atomically.
pub struct SnapshotStore {
    current: RwLock<Arc<OrgSnapshot>>,
    /// Serializes publishers so concurrent `publish` calls get distinct,
    /// monotonically increasing epochs.
    publish_lock: Mutex<()>,
}

fn plock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn rlock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn wlock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

impl SnapshotStore {
    /// A store whose epoch 0 holds the given organization.
    pub fn new(ctx: OrgContext, org: Organization, nav: NavConfig) -> SnapshotStore {
        let snap = OrgSnapshot::new(0, Arc::new(ctx), Arc::new(org), nav);
        SnapshotStore {
            current: RwLock::new(Arc::new(snap)),
            publish_lock: Mutex::new(()),
        }
    }

    /// The currently published snapshot. Cheap: one read lock + one `Arc`
    /// clone; the caller keeps the snapshot alive for as long as it needs
    /// it, independent of later publications.
    pub fn current(&self) -> Arc<OrgSnapshot> {
        Arc::clone(&rlock(&self.current))
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        rlock(&self.current).epoch()
    }

    /// Atomically publish a new organization; returns its epoch. In-flight
    /// requests holding the previous `Arc` finish on it untouched.
    pub fn publish(&self, ctx: OrgContext, org: Organization, nav: NavConfig) -> u64 {
        let _pub = plock(&self.publish_lock);
        let next_epoch = rlock(&self.current).epoch() + 1;
        let snap = Arc::new(OrgSnapshot::new(
            next_epoch,
            Arc::new(ctx),
            Arc::new(org),
            nav,
        ));
        *wlock(&self.current) = snap;
        next_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_org::{clustering_org, flat_org};
    use dln_synth::TagCloudConfig;

    fn snap(epoch: u64) -> (OrgSnapshot, OrgSnapshot) {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let a = clustering_org(&ctx);
        let b = flat_org(&ctx);
        (
            OrgSnapshot::new(
                epoch,
                Arc::new(ctx.clone()),
                Arc::new(a),
                NavConfig::default(),
            ),
            OrgSnapshot::new(epoch + 1, Arc::new(ctx), Arc::new(b), NavConfig::default()),
        )
    }

    #[test]
    fn labels_are_cached_and_stable() {
        let (s, _) = snap(0);
        let root = s.org().root();
        let l1 = s.label(root).to_string();
        let l2 = s.label(root).to_string();
        assert_eq!(l1, l2);
        assert!(!l1.is_empty());
    }

    #[test]
    fn cached_transition_ranking_matches_free_function_bitwise() {
        let (s, _) = snap(0);
        let query = s.ctx().attr(0).unit_topic.clone();
        for sid in s.org().alive_ids() {
            let free = dln_org::transition_probs_from(s.org(), s.nav(), sid, &query);
            // Twice: first call fills the cache, second serves from it.
            for _ in 0..2 {
                let cached = s.transition_probs(sid, &query);
                assert_eq!(free.len(), cached.len());
                for ((s1, p1), (s2, p2)) in free.iter().zip(&cached) {
                    assert_eq!(s1, s2);
                    assert_eq!(p1.to_bits(), p2.to_bits(), "state {} diverged", sid.0);
                }
            }
        }
    }

    #[test]
    fn path_validity() {
        let (s, _) = snap(0);
        let root = s.org().root();
        let child = s.org().state(root).children[0];
        assert!(s.path_is_valid(&[root, child]));
        assert!(!s.path_is_valid(&[child]), "must start at the root");
        assert!(!s.path_is_valid(&[]), "empty path is not a position");
        assert!(!s.path_is_valid(&[root, root]), "self loops are not edges");
    }

    #[test]
    fn replay_identical_snapshot_is_lossless() {
        let (s, _) = snap(0);
        let root = s.org().root();
        let mut path = vec![root];
        // Walk down two levels.
        for _ in 0..2 {
            let here = *path.last().unwrap();
            let Some(&c) = s.org().state(here).children.first() else {
                break;
            };
            path.push(c);
        }
        let (replayed, lost) = replay_path(&s, &s, &path);
        assert_eq!(replayed, path);
        assert_eq!(lost, 0);
    }

    #[test]
    fn replay_onto_different_structure_truncates() {
        let (clus, flat) = snap(0);
        // A depth-2+ path in the clustering org: interior states with
        // multi-tag sets do not exist in the flat org, so everything below
        // the root is lost unless the first step is a tag state.
        let root = clus.org().root();
        let mut path = vec![root];
        let mut here = root;
        for _ in 0..8 {
            let Some(&c) = clus
                .org()
                .state(here)
                .children
                .iter()
                .find(|c| clus.org().state(**c).tag.is_none())
            else {
                break;
            };
            path.push(c);
            here = c;
        }
        assert!(path.len() >= 2, "clustering org has interior states");
        let (replayed, lost) = replay_path(&clus, &flat, &path);
        assert_eq!(replayed.len() + lost, path.len());
        assert!(flat.path_is_valid(&replayed));
        assert!(lost >= 1, "flat org lacks the interior states");
        // Tag-state steps DO survive: root → tag state replays fully.
        let ts = clus.org().tag_states()[0];
        if clus.org().state(root).children.contains(&ts) {
            let (r2, l2) = replay_path(&clus, &flat, &[root, ts]);
            assert_eq!(l2, 0);
            assert!(flat.path_is_valid(&r2));
        }
    }

    #[test]
    fn store_publish_bumps_epoch_and_swaps_whole_snapshot() {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let store = SnapshotStore::new(ctx.clone(), clustering_org(&ctx), NavConfig::default());
        assert_eq!(store.epoch(), 0);
        let held = store.current();
        let e1 = store.publish(ctx.clone(), flat_org(&ctx), NavConfig::default());
        assert_eq!(e1, 1);
        assert_eq!(store.epoch(), 1);
        assert_eq!(held.epoch(), 0, "held snapshot is untouched by publish");
        assert_eq!(store.current().epoch(), 1);
    }
}
