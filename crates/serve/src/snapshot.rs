//! Immutable organization snapshots and epoch-based hot-swap.
//!
//! A [`OrgSnapshot`] bundles everything a navigation request needs behind
//! one read surface ([`OrgView`]), plus a shared lazily-filled label cache
//! (state labels are pure string renderings of immutable structure, so one
//! computation serves every session). Two representations publish through
//! the same type:
//!
//! * **Owned** — the in-memory `(ctx, org)` pair produced by the
//!   organizer, with per-state child-topic matrices gathered lazily.
//! * **Mapped** — a [`MappedSnapshot`] opened zero-copy from a persistent
//!   store file (DESIGN.md §5g); child matrices were laid out at save
//!   time, so the Eq 1 ranking streams straight off the map.
//!
//! Snapshots are never mutated after publication: a re-optimized
//! organization is installed by [`SnapshotStore::publish`] (or
//! [`SnapshotStore::publish_mapped`] for a store file), which swaps the
//! *whole* `Arc` under a short write lock and bumps the epoch. Readers
//! clone the `Arc` under a read lock, so a request observes either the old
//! snapshot or the new one in its entirety — never a torn mix (the paper's
//! extended version re-optimizes organizations as the lake evolves; this
//! is the mechanism that lets serving ride through those republications).
//!
//! Sessions that were navigating the previous epoch are reconciled by
//! [`replay_path`]: states are matched across snapshots by their *tag
//! sets* (the semantic identity of a state — slot ids are allocation
//! accidents), walking the old path down the new DAG for as long as edges
//! with the same tag sets exist. The unreplayable suffix is reported as
//! `lost_depth` so the client can tell the user "you were moved up N
//! levels by a reorganization" instead of silently teleporting them.

use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use dln_fault::DlnResult;
use dln_org::eval::NavConfig;
use dln_org::{
    open_store_with_fallback, save_store, transition_probs_over, MappedSnapshot, OrgContext,
    OrgView, Organization, OwnedSnap, StateId,
};

/// Which representation backs a snapshot.
enum SnapSource {
    /// In-memory context + organization.
    Owned(OwnedSnap),
    /// Zero-copy view of a persistent store file.
    Mapped(Arc<MappedSnapshot>),
}

/// Scope of a publication: `None` on a whole-snapshot publish, `Some` on
/// a shard-level republish where only the listed slots changed relative
/// to the snapshot of `from_epoch`.
///
/// This is what lets the serving layer migrate sessions pinned to
/// *untouched* shards by swapping their snapshot `Arc` in place — no
/// path replay, no lost depth — while sessions inside the republished
/// shard take the ordinary [`replay_path`] route.
#[derive(Clone, Debug)]
pub struct PublishScope {
    from_epoch: u64,
    /// Sorted, deduplicated changed slot ids (tombstoned + grafted).
    changed: Vec<u32>,
}

impl PublishScope {
    /// A scope describing a republish of `changed` slots on top of the
    /// snapshot published at `from_epoch`.
    pub fn new(from_epoch: u64, mut changed: Vec<u32>) -> PublishScope {
        changed.sort_unstable();
        changed.dedup();
        PublishScope {
            from_epoch,
            changed,
        }
    }

    /// The epoch this republish was derived from: the in-place migration
    /// shortcut is only sound for sessions pinned exactly there.
    pub fn from_epoch(&self) -> u64 {
        self.from_epoch
    }

    /// Number of changed slots.
    pub fn n_changed(&self) -> usize {
        self.changed.len()
    }

    /// Does the scope touch `sid`?
    pub fn touches(&self, sid: StateId) -> bool {
        self.changed.binary_search(&sid.0).is_ok()
    }

    /// Does the scope touch any state on `path`?
    pub fn affects_path(&self, path: &[StateId]) -> bool {
        path.iter().any(|s| self.touches(*s))
    }
}

/// An immutable, shareable view of one published organization.
pub struct OrgSnapshot {
    epoch: u64,
    nav: NavConfig,
    source: SnapSource,
    /// Shard-republish scope, when this snapshot was published as one.
    scope: Option<PublishScope>,
    /// Per-slot display labels, computed on first use and shared by every
    /// session on this snapshot.
    labels: Vec<OnceLock<String>>,
    /// Per-slot row-major `n_children × dim` child unit-topic matrices for
    /// the Eq 1 transition ranking (owned snapshots only — mapped ones
    /// carry the matrices in the file), computed on first use and shared
    /// by every session: structure is immutable after publication, so one
    /// gather pays for the whole epoch and each request's ranking becomes
    /// a single streaming mat-vec over contiguous memory.
    child_mats: Vec<OnceLock<Vec<f32>>>,
}

impl OrgSnapshot {
    fn from_source(epoch: u64, nav: NavConfig, source: SnapSource) -> OrgSnapshot {
        let n_slots = match &source {
            SnapSource::Owned(o) => o.n_slots(),
            SnapSource::Mapped(m) => m.n_slots(),
        };
        let mut labels = Vec::with_capacity(n_slots);
        labels.resize_with(n_slots, OnceLock::new);
        let mut child_mats = Vec::with_capacity(n_slots);
        child_mats.resize_with(n_slots, OnceLock::new);
        OrgSnapshot {
            epoch,
            nav,
            source,
            scope: None,
            labels,
            child_mats,
        }
    }

    /// Wrap a context + organization as the snapshot for `epoch`.
    pub fn new(epoch: u64, ctx: Arc<OrgContext>, org: Arc<Organization>, nav: NavConfig) -> Self {
        OrgSnapshot::from_source(epoch, nav, SnapSource::Owned(OwnedSnap { ctx, org }))
    }

    /// Wrap an opened store file as the snapshot for `epoch`; the
    /// navigation-model parameters come from the file.
    pub fn from_mapped(epoch: u64, mapped: Arc<MappedSnapshot>) -> Self {
        let nav = mapped.nav();
        OrgSnapshot::from_source(epoch, nav, SnapSource::Mapped(mapped))
    }

    /// The epoch this snapshot was published at (0 = the initial one).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshot's read surface.
    #[inline]
    pub fn view(&self) -> &dyn OrgView {
        match &self.source {
            SnapSource::Owned(o) => o,
            SnapSource::Mapped(m) => m.as_ref(),
        }
    }

    /// Is this snapshot served from a mapped store file?
    pub fn is_mapped(&self) -> bool {
        matches!(self.source, SnapSource::Mapped(_))
    }

    /// The shard-republish scope this snapshot was published with, if any.
    #[inline]
    pub fn scope(&self) -> Option<&PublishScope> {
        self.scope.as_ref()
    }

    /// The owned `(ctx, org)` pair behind this snapshot, when it is owned.
    /// The re-optimization loop needs the live structures to plan and
    /// graft against; a mapped snapshot returns `None` (re-optimizing a
    /// store file requires re-materializing it first).
    pub fn owned_parts(&self) -> Option<(Arc<OrgContext>, Arc<Organization>)> {
        match &self.source {
            SnapSource::Owned(o) => Some((Arc::clone(&o.ctx), Arc::clone(&o.org))),
            SnapSource::Mapped(_) => None,
        }
    }

    /// Navigation-model parameters.
    #[inline]
    pub fn nav(&self) -> NavConfig {
        self.nav
    }

    /// The root state.
    #[inline]
    pub fn root(&self) -> StateId {
        self.view().root()
    }

    /// Children of `sid`, in canonical order.
    #[inline]
    pub fn children(&self, sid: StateId) -> &[StateId] {
        self.view().children(sid)
    }

    /// The local tag when `sid` is a tag state.
    #[inline]
    pub fn state_tag(&self, sid: StateId) -> Option<u32> {
        self.view().state_tag(sid)
    }

    /// Display label of a state (§4.4 labelling scheme), cached across all
    /// sessions of this snapshot.
    pub fn label(&self, sid: StateId) -> &str {
        self.labels[sid.index()].get_or_init(|| self.view().label_of(sid, 2))
    }

    /// Eq 1 transition probabilities out of `sid` for a query topic,
    /// served from the snapshot's child-topic matrix — **bit-identical**
    /// to [`dln_org::transition_probs_from`] (both paths funnel into
    /// [`transition_probs_over`]: the same dot kernel row-by-row and the
    /// same softmax), whether the matrix was gathered lazily (owned) or
    /// laid out in the store file at save time (mapped).
    pub fn transition_probs(&self, sid: StateId, query_unit: &[f32]) -> Vec<(StateId, f64)> {
        match &self.source {
            SnapSource::Mapped(m) => transition_probs_over(
                m.children(sid),
                self.nav,
                m.child_mat(sid).unwrap_or(&[]),
                query_unit,
            ),
            SnapSource::Owned(o) => {
                let mat = self.child_mats[sid.index()].get_or_init(|| {
                    let children = o.children(sid);
                    let mut m = Vec::with_capacity(children.len() * o.dim());
                    for &c in children {
                        m.extend_from_slice(o.state_unit_topic(c));
                    }
                    m
                });
                transition_probs_over(o.children(sid), self.nav, mat, query_unit)
            }
        }
    }

    /// Is `path` a root-anchored chain of alive edges on this snapshot?
    pub fn path_is_valid(&self, path: &[StateId]) -> bool {
        self.view().path_is_valid(path)
    }

    /// Persist this snapshot as a store file at `path` (atomic write +
    /// `.prev` rotation). Owned snapshots are encoded; mapped ones
    /// re-publish their exact bytes.
    pub fn save(&self, path: &Path) -> DlnResult<()> {
        match &self.source {
            SnapSource::Owned(o) => save_store(path, &o.ctx, &o.org, self.nav),
            SnapSource::Mapped(m) => m.save_to(path),
        }
    }
}

/// Replay `path` (valid on `old`) onto `new`, matching states by tag set
/// (compared as raw bitset words — for an equal tag universe, word
/// equality is set equality).
///
/// Returns the deepest replayable prefix (always at least the new root)
/// and the number of trailing old-path states that could not be matched.
pub fn replay_path(
    old: &OrgSnapshot,
    new: &OrgSnapshot,
    path: &[StateId],
) -> (Vec<StateId>, usize) {
    let (ov, nv) = (old.view(), new.view());
    let root = nv.root();
    let mut replayed = vec![root];
    // A different tag universe (republication over a different lake or tag
    // group) makes tag-set identity meaningless: keep only the root.
    if ov.n_tags() != nv.n_tags() {
        return (replayed, path.len().saturating_sub(1));
    }
    for old_sid in path.iter().skip(1) {
        let want = ov.state_tag_words(*old_sid);
        let here = *replayed.last().unwrap_or(&root);
        let next = nv
            .children(here)
            .iter()
            .copied()
            .find(|c| nv.alive(*c) && nv.state_tag_words(*c) == want);
        match next {
            Some(c) => replayed.push(c),
            None => break,
        }
    }
    let lost = path.len() - replayed.len();
    (replayed, lost)
}

/// The epoch-versioned publication point: one current snapshot, swapped
/// atomically.
pub struct SnapshotStore {
    current: RwLock<Arc<OrgSnapshot>>,
    /// Serializes publishers so concurrent `publish` calls get distinct,
    /// monotonically increasing epochs.
    publish_lock: Mutex<()>,
}

fn plock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn rlock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn wlock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

impl SnapshotStore {
    /// A store whose epoch 0 holds the given organization.
    pub fn new(ctx: OrgContext, org: Organization, nav: NavConfig) -> SnapshotStore {
        let snap = OrgSnapshot::new(0, Arc::new(ctx), Arc::new(org), nav);
        SnapshotStore {
            current: RwLock::new(Arc::new(snap)),
            publish_lock: Mutex::new(()),
        }
    }

    /// A store whose epoch 0 is opened zero-copy from the persistent
    /// store file at `path` (with `.prev` generation fallback) — the
    /// millisecond cold-start path.
    pub fn open_path(path: &Path) -> DlnResult<SnapshotStore> {
        let mapped = Arc::new(open_store_with_fallback(path)?);
        let snap = OrgSnapshot::from_mapped(0, mapped);
        Ok(SnapshotStore {
            current: RwLock::new(Arc::new(snap)),
            publish_lock: Mutex::new(()),
        })
    }

    /// The currently published snapshot. Cheap: one read lock + one `Arc`
    /// clone; the caller keeps the snapshot alive for as long as it needs
    /// it, independent of later publications.
    pub fn current(&self) -> Arc<OrgSnapshot> {
        Arc::clone(&rlock(&self.current))
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        rlock(&self.current).epoch()
    }

    fn install(&self, make: impl FnOnce(u64) -> OrgSnapshot) -> u64 {
        let _pub = plock(&self.publish_lock);
        let next_epoch = rlock(&self.current).epoch() + 1;
        let snap = Arc::new(make(next_epoch));
        *wlock(&self.current) = snap;
        next_epoch
    }

    /// Atomically publish a new organization; returns its epoch. In-flight
    /// requests holding the previous `Arc` finish on it untouched.
    pub fn publish(&self, ctx: OrgContext, org: Organization, nav: NavConfig) -> u64 {
        self.install(|e| OrgSnapshot::new(e, Arc::new(ctx), Arc::new(org), nav))
    }

    /// Atomically publish an opened store file; returns its epoch. Mapped
    /// epochs hot-swap exactly like owned ones — sessions migrate across
    /// by the same tag-set path replay.
    pub fn publish_mapped(&self, mapped: Arc<MappedSnapshot>) -> u64 {
        self.install(|e| OrgSnapshot::from_mapped(e, mapped))
    }

    /// Atomically publish a shard-level republish: `org` differs from the
    /// currently published snapshot only in the `changed` slots (the
    /// tombstoned and grafted states of one shard subtree). The snapshot
    /// carries a [`PublishScope`] anchored at the predecessor epoch, which
    /// the migration path uses to keep sessions on untouched shards in
    /// place instead of replaying them.
    pub fn publish_scoped(
        &self,
        ctx: Arc<OrgContext>,
        org: Organization,
        nav: NavConfig,
        changed: Vec<u32>,
    ) -> u64 {
        self.install(|e| {
            let mut snap = OrgSnapshot::new(e, ctx, Arc::new(org), nav);
            snap.scope = Some(PublishScope::new(e - 1, changed));
            snap
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_org::{clustering_org, flat_org};
    use dln_synth::TagCloudConfig;

    fn snap(epoch: u64) -> (OrgSnapshot, OrgSnapshot) {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let a = clustering_org(&ctx);
        let b = flat_org(&ctx);
        (
            OrgSnapshot::new(
                epoch,
                Arc::new(ctx.clone()),
                Arc::new(a),
                NavConfig::default(),
            ),
            OrgSnapshot::new(epoch + 1, Arc::new(ctx), Arc::new(b), NavConfig::default()),
        )
    }

    fn store_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dln_serve_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn labels_are_cached_and_stable() {
        let (s, _) = snap(0);
        let root = s.root();
        let l1 = s.label(root).to_string();
        let l2 = s.label(root).to_string();
        assert_eq!(l1, l2);
        assert!(!l1.is_empty());
    }

    #[test]
    fn cached_transition_ranking_matches_free_function_bitwise() {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        let query = ctx.attr(0).unit_topic.clone();
        let alive: Vec<StateId> = org.alive_ids().collect();
        let free: Vec<_> = alive
            .iter()
            .map(|&sid| dln_org::transition_probs_from(&org, NavConfig::default(), sid, &query))
            .collect();
        let s = OrgSnapshot::new(0, Arc::new(ctx), Arc::new(org), NavConfig::default());
        for (sid, free) in alive.iter().zip(&free) {
            // Twice: first call fills the cache, second serves from it.
            for _ in 0..2 {
                let cached = s.transition_probs(*sid, &query);
                assert_eq!(free.len(), cached.len());
                for ((s1, p1), (s2, p2)) in free.iter().zip(&cached) {
                    assert_eq!(s1, s2);
                    assert_eq!(p1.to_bits(), p2.to_bits(), "state {} diverged", sid.0);
                }
            }
        }
    }

    #[test]
    fn mapped_snapshot_serves_bit_identical_rankings() {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        let path = store_path("rankings.dlnstore");
        dln_org::save_store(&path, &ctx, &org, NavConfig::default()).unwrap();
        let mapped = Arc::new(dln_org::open_store(&path).unwrap());
        let query = ctx.attr(0).unit_topic.clone();
        let owned = OrgSnapshot::new(0, Arc::new(ctx), Arc::new(org), NavConfig::default());
        let snap = OrgSnapshot::from_mapped(0, mapped);
        assert!(snap.is_mapped() && !owned.is_mapped());
        for sid in owned.view().topo_order() {
            assert_eq!(snap.label(*sid), owned.label(*sid));
            let (m, o) = (
                snap.transition_probs(*sid, &query),
                owned.transition_probs(*sid, &query),
            );
            assert_eq!(m.len(), o.len());
            for ((s1, p1), (s2, p2)) in m.iter().zip(&o) {
                assert_eq!(s1, s2);
                assert_eq!(p1.to_bits(), p2.to_bits(), "state {} diverged", sid.0);
            }
        }
    }

    #[test]
    fn path_validity() {
        let (s, _) = snap(0);
        let root = s.root();
        let child = s.children(root)[0];
        assert!(s.path_is_valid(&[root, child]));
        assert!(!s.path_is_valid(&[child]), "must start at the root");
        assert!(!s.path_is_valid(&[]), "empty path is not a position");
        assert!(!s.path_is_valid(&[root, root]), "self loops are not edges");
    }

    #[test]
    fn replay_identical_snapshot_is_lossless() {
        let (s, _) = snap(0);
        let root = s.root();
        let mut path = vec![root];
        // Walk down two levels.
        for _ in 0..2 {
            let here = *path.last().unwrap();
            let Some(&c) = s.children(here).first() else {
                break;
            };
            path.push(c);
        }
        let (replayed, lost) = replay_path(&s, &s, &path);
        assert_eq!(replayed, path);
        assert_eq!(lost, 0);
    }

    #[test]
    fn replay_onto_different_structure_truncates() {
        let (clus, flat) = snap(0);
        // A depth-2+ path in the clustering org: interior states with
        // multi-tag sets do not exist in the flat org, so everything below
        // the root is lost unless the first step is a tag state.
        let root = clus.root();
        let mut path = vec![root];
        let mut here = root;
        for _ in 0..8 {
            let Some(&c) = clus
                .children(here)
                .iter()
                .find(|c| clus.state_tag(**c).is_none())
            else {
                break;
            };
            path.push(c);
            here = c;
        }
        assert!(path.len() >= 2, "clustering org has interior states");
        let (replayed, lost) = replay_path(&clus, &flat, &path);
        assert_eq!(replayed.len() + lost, path.len());
        assert!(flat.path_is_valid(&replayed));
        assert!(lost >= 1, "flat org lacks the interior states");
        // Tag-state steps DO survive: root → tag state replays fully.
        let ts = clus.view().tag_state(0);
        if clus.children(root).contains(&ts) {
            let (r2, l2) = replay_path(&clus, &flat, &[root, ts]);
            assert_eq!(l2, 0);
            assert!(flat.path_is_valid(&r2));
        }
    }

    #[test]
    fn replay_across_owned_and_mapped_representations() {
        // The same organization, one epoch owned and one mapped from a
        // store file: every path replays losslessly in both directions.
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        let path_file = store_path("replay.dlnstore");
        dln_org::save_store(&path_file, &ctx, &org, NavConfig::default()).unwrap();
        let mapped =
            OrgSnapshot::from_mapped(1, Arc::new(dln_org::open_store(&path_file).unwrap()));
        let owned = OrgSnapshot::new(0, Arc::new(ctx), Arc::new(org), NavConfig::default());
        let root = owned.root();
        let mut path = vec![root];
        let mut here = root;
        for _ in 0..3 {
            let Some(&c) = owned.children(here).first() else {
                break;
            };
            path.push(c);
            here = c;
        }
        for (a, b) in [(&owned, &mapped), (&mapped, &owned)] {
            let (replayed, lost) = replay_path(a, b, &path);
            assert_eq!(lost, 0, "identical structure replays losslessly");
            assert_eq!(replayed, path, "same slot ids: the store preserves them");
            assert!(b.path_is_valid(&replayed));
        }
    }

    #[test]
    fn store_publish_bumps_epoch_and_swaps_whole_snapshot() {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let store = SnapshotStore::new(ctx.clone(), clustering_org(&ctx), NavConfig::default());
        assert_eq!(store.epoch(), 0);
        let held = store.current();
        let e1 = store.publish(ctx.clone(), flat_org(&ctx), NavConfig::default());
        assert_eq!(e1, 1);
        assert_eq!(store.epoch(), 1);
        assert_eq!(held.epoch(), 0, "held snapshot is untouched by publish");
        assert_eq!(store.current().epoch(), 1);
    }

    #[test]
    fn open_path_and_publish_mapped_round_trip() {
        let bench = TagCloudConfig::small().generate();
        let ctx = OrgContext::full(&bench.lake);
        let org = clustering_org(&ctx);
        let path = store_path("openpath.dlnstore");
        let owned = OrgSnapshot::new(
            0,
            Arc::new(ctx.clone()),
            Arc::new(org),
            NavConfig::default(),
        );
        owned.save(&path).unwrap();

        let store = SnapshotStore::open_path(&path).unwrap();
        assert_eq!(store.epoch(), 0);
        assert!(store.current().is_mapped());
        assert_eq!(store.current().root(), owned.root());

        // A mapped snapshot can itself be re-saved and re-published.
        let copy = store_path("openpath_copy.dlnstore");
        store.current().save(&copy).unwrap();
        let remapped = Arc::new(dln_org::open_store(&copy).unwrap());
        let e1 = store.publish_mapped(remapped);
        assert_eq!(e1, 1);
        assert!(store.current().is_mapped());
    }
}
