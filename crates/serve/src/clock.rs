//! Injected time sources.
//!
//! Everything time-dependent in the serving layer — session TTL eviction,
//! per-request deadlines, retry-after suggestions — reads time through the
//! [`Clock`] trait instead of calling `Instant::now` directly. Production
//! services use [`WallClock`]; tests inject [`ManualClock`], a logical
//! clock that only moves when the test advances it, so eviction schedules
//! and deadline decisions are deterministic by construction (the same idea
//! as `dln-fault`'s seeded failpoint streams: reproducibility comes from
//! making the nondeterministic input explicit and injectable).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic millisecond clock.
///
/// The unit is "milliseconds" for wall clocks and "ticks" for logical
/// ones; the serving layer only ever compares differences against
/// configured budgets, so the two are interchangeable.
pub trait Clock: Send + Sync {
    /// Milliseconds (or logical ticks) since the clock's origin.
    fn now(&self) -> u64;
}

/// Real time, measured from construction.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> WallClock {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A logical clock that only moves when told to. Shared freely across
/// threads (all operations are atomic).
#[derive(Debug, Default)]
pub struct ManualClock {
    ticks: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start` ticks.
    pub fn new(start: u64) -> ManualClock {
        ManualClock {
            ticks: AtomicU64::new(start),
        }
    }

    /// Advance the clock by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.ticks.fetch_add(ticks, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_on_advance() {
        let c = ManualClock::new(5);
        assert_eq!(c.now(), 5);
        assert_eq!(c.now(), 5);
        c.advance(10);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
