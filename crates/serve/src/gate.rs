//! Admission control: a counting semaphore with a bounded wait queue.
//!
//! Load shedding is the difference between a service that degrades and one
//! that collapses: past the concurrency limit, requests briefly queue; past
//! the queue bound they are *refused immediately* with a typed
//! [`Overloaded`](crate::ServeError::Overloaded) carrying a retry-after
//! hint, instead of piling up latency for everyone already admitted.
//!
//! Implemented as a hand-rolled `Mutex` + `Condvar` semaphore (the
//! workspace is dependency-free by policy; `std` has no semaphore). The
//! permit is RAII: dropping it releases the slot and wakes one waiter.

use std::sync::{Condvar, Mutex};

use crate::error::{ServeError, ServeResult};

struct GateState {
    active: usize,
    waiting: usize,
}

/// Bounded-concurrency admission gate.
pub struct AdmissionGate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_active: usize,
    max_waiting: usize,
    retry_base_ms: u64,
}

/// RAII admission permit; releases its slot on drop.
pub struct Permit<'g> {
    gate: &'g AdmissionGate,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Permit")
    }
}

impl AdmissionGate {
    /// A gate admitting `max_active` concurrent requests with up to
    /// `max_waiting` queued behind them. `retry_base_ms` scales the
    /// retry-after hint on shed requests.
    pub fn new(max_active: usize, max_waiting: usize, retry_base_ms: u64) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new(GateState {
                active: 0,
                waiting: 0,
            }),
            cv: Condvar::new(),
            max_active: max_active.max(1),
            max_waiting,
            retry_base_ms: retry_base_ms.max(1),
        }
    }

    /// Acquire a permit, blocking in the bounded queue if the service is at
    /// its concurrency limit. Returns [`ServeError::Overloaded`] without
    /// blocking when the queue is also full.
    pub fn admit(&self) -> ServeResult<Permit<'_>> {
        let mut st = lock_state(&self.state);
        if st.active < self.max_active {
            st.active += 1;
            return Ok(Permit { gate: self });
        }
        if st.waiting >= self.max_waiting {
            // Hint scales with how far behind the service is: a full queue
            // of W requests at base B suggests waiting roughly one queue
            // drain.
            let retry_after_ms = self.retry_base_ms * (self.max_waiting as u64 + 1);
            return Err(ServeError::Overloaded { retry_after_ms });
        }
        st.waiting += 1;
        while st.active >= self.max_active {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st.waiting -= 1;
        st.active += 1;
        Ok(Permit { gate: self })
    }

    /// Non-blocking variant: a permit now, or `Overloaded` (used by tests
    /// and by callers that prefer shedding over queueing).
    pub fn try_admit(&self) -> ServeResult<Permit<'_>> {
        let mut st = lock_state(&self.state);
        if st.active < self.max_active {
            st.active += 1;
            return Ok(Permit { gate: self });
        }
        Err(ServeError::Overloaded {
            retry_after_ms: self.retry_base_ms,
        })
    }

    /// Currently admitted request count (diagnostic).
    pub fn active(&self) -> usize {
        lock_state(&self.state).active
    }

    /// Currently queued request count (diagnostic).
    pub fn waiting(&self) -> usize {
        lock_state(&self.state).waiting
    }

    fn release(&self) {
        let mut st = lock_state(&self.state);
        st.active = st.active.saturating_sub(1);
        drop(st);
        self.cv.notify_one();
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

fn lock_state(m: &Mutex<GateState>) -> std::sync::MutexGuard<'_, GateState> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admits_up_to_limit_then_sheds_past_queue() {
        let gate = AdmissionGate::new(2, 0, 10);
        let p1 = gate.admit().unwrap();
        let p2 = gate.admit().unwrap();
        let err = gate.admit().unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { retry_after_ms: 10 }));
        drop(p1);
        let _p3 = gate.admit().unwrap();
        drop(p2);
    }

    #[test]
    fn queued_requests_run_after_release() {
        let gate = Arc::new(AdmissionGate::new(1, 8, 5));
        let ran = Arc::new(AtomicUsize::new(0));
        let p = gate.admit().unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = Arc::clone(&gate);
            let r = Arc::clone(&ran);
            handles.push(std::thread::spawn(move || {
                let _p = g.admit().unwrap();
                r.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // Give the workers time to hit the queue, then open the gate.
        while gate.waiting() < 4 {
            std::thread::yield_now();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 0, "all queued behind permit");
        drop(p);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 4);
        assert_eq!(gate.active(), 0);
        assert_eq!(gate.waiting(), 0);
    }

    #[test]
    fn shed_hint_scales_with_queue_depth() {
        let gate = AdmissionGate::new(1, 3, 7);
        let _p = gate.admit().unwrap();
        // Fill the queue from threads, then overflow from here.
        let gate = &gate;
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(move || {
                    let _q = gate.admit().unwrap();
                });
            }
            while gate.waiting() < 3 {
                std::thread::yield_now();
            }
            match gate.admit() {
                Err(ServeError::Overloaded { retry_after_ms }) => {
                    assert_eq!(retry_after_ms, 7 * 4)
                }
                other => panic!("expected shed, got {:?}", other.map(|_| ())),
            }
            drop(_p);
        });
    }
}
